package media

import (
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/transport"
)

// Pump plays a source into a send VC at the source's nominal rate,
// measured on clk — the source host's own (possibly drifting) clock, which
// is exactly how a stored-media server paces itself. Pacing uses an
// absolute schedule (frame i due at start + i/rate) so sleep overshoot
// never erodes the rate. Pump returns when the source ends, the VC
// closes, or stop is closed.
func Pump(clk clock.Clock, src Source, vc *transport.SendVC, stop <-chan struct{}) error {
	rate := src.Rate()
	start := clk.Now()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		f, ok := src.Next()
		if !ok {
			return nil
		}
		due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
		if d := due.Sub(clk.Now()); d > 0 {
			clk.Sleep(d)
		}
		if _, err := vc.Write(f.Marshal(), f.Event); err != nil {
			return err
		}
	}
}

// PumpUnpaced plays a source into a send VC as fast as the transport
// accepts it (the transport's own rate-based flow control then paces the
// wire). Used where the application is not the pacing element.
func PumpUnpaced(src Source, vc *transport.SendVC, stop <-chan struct{}) error {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		f, ok := src.Next()
		if !ok {
			return nil
		}
		if _, err := vc.Write(f.Marshal(), f.Event); err != nil {
			return err
		}
	}
}

// Drain reads OSDUs from a receive VC into a measuring sink until the VC
// closes or stop is closed, stamping deliveries with clk.
func Drain(clk clock.Clock, rv *transport.RecvVC, sink *Sink, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		u, err := rv.Read()
		if err != nil {
			return
		}
		f, err := UnmarshalFrame(u.Payload)
		if err != nil {
			continue
		}
		f.Event = u.Event
		sink.Consume(f, clk.Now())
	}
}
