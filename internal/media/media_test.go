package media

import (
	"testing"
	"testing/quick"
	"time"

	"cmtos/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Seq: 42, PTS: 1680 * time.Millisecond, Data: []byte("frame body")}
	got, err := UnmarshalFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.PTS != f.PTS || string(got.Data) != string(f.Data) {
		t.Fatalf("round trip: %+v vs %+v", got, f)
	}
}

func TestUnmarshalShortFrame(t *testing.T) {
	if _, err := UnmarshalFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seq uint32, pts int64, data []byte) bool {
		fr := Frame{Seq: seq, PTS: time.Duration(pts), Data: data}
		got, err := UnmarshalFrame(fr.Marshal())
		if err != nil {
			return false
		}
		return got.Seq == seq && got.PTS == time.Duration(pts) && string(got.Data) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCBRFrames(t *testing.T) {
	src := &CBR{Size: 100, FrameRate: 25, Count: 3}
	for i := uint32(0); i < 3; i++ {
		f, ok := src.Next()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if f.Seq != i || len(f.Data) != 100 {
			t.Fatalf("frame %d: seq %d size %d", i, f.Seq, len(f.Data))
		}
		if !VerifyPattern(f.Seq, f.Data) {
			t.Fatalf("frame %d fails pattern check", i)
		}
		wantPTS := time.Duration(float64(i) / 25 * float64(time.Second))
		if f.PTS != wantPTS {
			t.Fatalf("frame %d PTS %v, want %v", i, f.PTS, wantPTS)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source did not end at Count")
	}
	if src.Rate() != 25 || src.FrameBound() != 100+frameHeader {
		t.Fatal("CBR metadata")
	}
}

func TestCBRSeek(t *testing.T) {
	src := &CBR{Size: 8, FrameRate: 10, Count: 100}
	src.Seek(50)
	f, ok := src.Next()
	if !ok || f.Seq != 50 {
		t.Fatalf("after Seek(50): %v %v", f.Seq, ok)
	}
}

func TestCBRUnboundedAndEvents(t *testing.T) {
	src := &CBR{Size: 4, FrameRate: 10, EventAt: map[uint32]core.EventPattern{2: 0xE}}
	for i := 0; i < 5; i++ {
		f, ok := src.Next()
		if !ok {
			t.Fatal("unbounded source ended")
		}
		if i == 2 && f.Event != 0xE {
			t.Fatal("event mark missing")
		}
		if i != 2 && f.Event != 0 {
			t.Fatal("spurious event mark")
		}
	}
}

func TestVerifyPatternDetectsCorruption(t *testing.T) {
	d := pattern(7, 32)
	if !VerifyPattern(7, d) {
		t.Fatal("pristine pattern rejected")
	}
	d[13] ^= 0xFF
	if VerifyPattern(7, d) {
		t.Fatal("corrupt pattern accepted")
	}
}

func TestVBRSizesVaryAndAreDeterministic(t *testing.T) {
	mk := func() *VBR {
		return &VBR{MeanSize: 1000, Burst: 3, PBurst: 0.2, PCalm: 0.3,
			FrameRate: 25, Count: 200, Seed: 42}
	}
	a, b := mk(), mk()
	sizes := map[int]bool{}
	var total int
	for i := 0; i < 200; i++ {
		fa, okA := a.Next()
		fb, okB := b.Next()
		if !okA || !okB {
			t.Fatal("source ended early")
		}
		if len(fa.Data) != len(fb.Data) {
			t.Fatal("VBR not deterministic for equal seeds")
		}
		if len(fa.Data) > a.FrameBound()-frameHeader {
			t.Fatalf("frame %d exceeds FrameBound", i)
		}
		sizes[len(fa.Data)] = true
		total += len(fa.Data)
	}
	if len(sizes) < 10 {
		t.Fatalf("VBR produced only %d distinct sizes", len(sizes))
	}
	mean := total / 200
	if mean < 300 || mean > 3000 {
		t.Fatalf("VBR mean size %d far from configured 1000", mean)
	}
}

func TestCaptionsCarryEvents(t *testing.T) {
	c := &Captions{Lines: []string{"hello", "world"}, FrameRate: 1, Event: 0xCC}
	f, ok := c.Next()
	if !ok || string(f.Data) != "hello" || f.Event != 0xCC {
		t.Fatalf("caption 0: %+v", f)
	}
	if c.FrameBound() != 5+frameHeader {
		t.Fatalf("FrameBound = %d", c.FrameBound())
	}
	_, _ = c.Next()
	if _, ok := c.Next(); ok {
		t.Fatal("captions did not end")
	}
	c.Seek(1)
	f, _ = c.Next()
	if string(f.Data) != "world" {
		t.Fatal("caption Seek")
	}
}

func TestSinkStats(t *testing.T) {
	s := NewSink()
	s.VerifyCBR = true
	base := time.Unix(0, 0)
	// Frames 0,1,3 (gap at 2), then a duplicate of 1.
	s.Consume(Frame{Seq: 0, Data: pattern(0, 8)}, base)
	s.Consume(Frame{Seq: 1, Data: pattern(1, 8)}, base.Add(10*time.Millisecond))
	s.Consume(Frame{Seq: 3, Data: pattern(3, 8)}, base.Add(40*time.Millisecond))
	s.Consume(Frame{Seq: 1, Data: pattern(9, 8)}, base.Add(50*time.Millisecond)) // ooo + corrupt
	st := s.Stats()
	if st.Received != 4 {
		t.Errorf("Received = %d", st.Received)
	}
	if st.Gaps != 1 {
		t.Errorf("Gaps = %d, want 1", st.Gaps)
	}
	if st.OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d", st.OutOfOrder)
	}
	if st.Corrupt != 1 {
		t.Errorf("Corrupt = %d", st.Corrupt)
	}
	if st.MaxInterArrival != 30*time.Millisecond {
		t.Errorf("MaxInterArrival = %v", st.MaxInterArrival)
	}
	if st.First != base || st.Last != base.Add(50*time.Millisecond) {
		t.Errorf("First/Last wrong")
	}
	if s.Received() != 4 || s.LastSeq() != 3 {
		t.Errorf("accessors: %d/%d", s.Received(), s.LastSeq())
	}
}

func TestSinkJitterStdDev(t *testing.T) {
	s := NewSink()
	base := time.Unix(0, 0)
	// Perfectly periodic: stddev 0.
	for i := 0; i < 10; i++ {
		s.Consume(Frame{Seq: uint32(i)}, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	if st := s.Stats(); st.JitterStdDev > time.Millisecond {
		t.Fatalf("periodic stream jitter = %v", st.JitterStdDev)
	}
	// Irregular: stddev grows.
	s2 := NewSink()
	times := []int{0, 5, 30, 31, 70, 71, 72, 120}
	for i, ms := range times {
		s2.Consume(Frame{Seq: uint32(i)}, base.Add(time.Duration(ms)*time.Millisecond))
	}
	if st := s2.Stats(); st.JitterStdDev < 5*time.Millisecond {
		t.Fatalf("irregular stream jitter = %v", st.JitterStdDev)
	}
}

func TestSinkLateFrames(t *testing.T) {
	s := NewSink()
	s.NominalRate = 100 // 10ms period
	base := time.Unix(0, 0)
	s.Consume(Frame{Seq: 0}, base)
	s.Consume(Frame{Seq: 1}, base.Add(10*time.Millisecond))
	s.Consume(Frame{Seq: 2}, base.Add(100*time.Millisecond)) // 80ms late (8 periods)
	st := s.Stats()
	if st.LateFrames != 1 {
		t.Fatalf("LateFrames = %d, want 1", st.LateFrames)
	}
}

func TestSinkEmptyStats(t *testing.T) {
	st := NewSink().Stats()
	if st.Received != 0 || st.MeanInterArrival != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestSyncPair(t *testing.T) {
	a, b := NewSink(), NewSink()
	base := time.Unix(0, 0)
	// a: 10 frames at 100/s = 100ms of media; b: 3 frames at 25/s = 120ms.
	for i := 0; i < 10; i++ {
		a.Consume(Frame{Seq: uint32(i)}, base)
	}
	for i := 0; i < 3; i++ {
		b.Consume(Frame{Seq: uint32(i)}, base)
	}
	p := &SyncPair{A: a, B: b, RateA: 100, RateB: 25}
	skew := p.Sample()
	if skew != 20*time.Millisecond {
		t.Fatalf("skew = %v, want 20ms", skew)
	}
	if p.MaxSkew() != 20*time.Millisecond || p.MeanSkew() != 20*time.Millisecond {
		t.Fatalf("pair stats: %s", p)
	}
}

func TestProgress(t *testing.T) {
	s := NewSink()
	for i := 0; i < 50; i++ {
		s.Consume(Frame{Seq: uint32(i)}, time.Unix(0, 0))
	}
	if got := s.Progress(25); got != 2*time.Second {
		t.Fatalf("Progress = %v, want 2s", got)
	}
	if s.Progress(0) != 0 {
		t.Fatal("Progress with zero rate")
	}
}
