// Package media models the continuous-media endpoints of the Lancaster
// platform: stored-media sources (constant and variable bit rate), live
// sources, caption tracks, and measuring sinks that record the delivery
// statistics (inter-arrival jitter, gaps, inter-stream skew) the
// orchestration experiments report. The paper's A/V hardware (§2.1) is
// replaced by these synthetic equivalents; the orchestrator only ever
// sees OSDU production and consumption, so the substitution preserves
// every code path above the device layer.
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"cmtos/internal/core"
)

// Frame is one media quantum: a video frame, an audio chunk, or a text
// caption. Frames map 1:1 onto OSDUs.
type Frame struct {
	// Seq is the frame number within its track, from zero.
	Seq uint32
	// PTS is the frame's presentation time relative to track start.
	PTS time.Duration
	// Event is an optional OPDU event-field value (§6.3.4).
	Event core.EventPattern
	// Data is the payload.
	Data []byte
}

// frameHeader is Seq + PTS.
const frameHeader = 4 + 8

// Marshal encodes the frame for transmission as an OSDU payload.
func (f Frame) Marshal() []byte {
	buf := make([]byte, frameHeader+len(f.Data))
	binary.BigEndian.PutUint32(buf, f.Seq)
	binary.BigEndian.PutUint64(buf[4:], uint64(f.PTS))
	copy(buf[frameHeader:], f.Data)
	return buf
}

// UnmarshalFrame decodes an OSDU payload produced by Marshal.
func UnmarshalFrame(payload []byte) (Frame, error) {
	if len(payload) < frameHeader {
		return Frame{}, errors.New("media: short frame")
	}
	return Frame{
		Seq:  binary.BigEndian.Uint32(payload),
		PTS:  time.Duration(binary.BigEndian.Uint64(payload[4:])),
		Data: payload[frameHeader:],
	}, nil
}

// Source produces a track of frames at a nominal rate.
type Source interface {
	// Next returns the next frame; ok is false at end of media.
	Next() (f Frame, ok bool)
	// Rate returns the nominal frame rate in frames per second.
	Rate() float64
	// FrameBound returns the largest frame payload the source emits,
	// in bytes (for MaxOSDUSize negotiation).
	FrameBound() int
}

// Seekable is implemented by stored-media sources that support the
// stop-then-seek scenario of §6.2.1.
type Seekable interface {
	Source
	// Seek repositions the track at frame n.
	Seek(n uint32)
}

// CBR is a constant-bit-rate stored source: Count frames of exactly Size
// bytes at Rate frames/sec. The payload encodes the frame number so sinks
// can verify content integrity. The zero value is not usable; fill the
// fields. CBR is not safe for concurrent use.
type CBR struct {
	Size      int     // payload bytes per frame
	FrameRate float64 // frames per second
	Count     uint32  // total frames; 0 = unbounded
	EventAt   map[uint32]core.EventPattern

	next uint32
}

// Next implements Source.
func (c *CBR) Next() (Frame, bool) {
	if c.Count != 0 && c.next >= c.Count {
		return Frame{}, false
	}
	seq := c.next
	c.next++
	f := Frame{
		Seq:  seq,
		PTS:  time.Duration(float64(seq) / c.FrameRate * float64(time.Second)),
		Data: pattern(seq, c.Size),
	}
	if ev, ok := c.EventAt[seq]; ok {
		f.Event = ev
	}
	return f, true
}

// Rate implements Source.
func (c *CBR) Rate() float64 { return c.FrameRate }

// FrameBound implements Source.
func (c *CBR) FrameBound() int { return c.Size + frameHeader }

// Seek implements Seekable.
func (c *CBR) Seek(n uint32) { c.next = n }

// pattern fills a deterministic, seq-dependent payload.
func pattern(seq uint32, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(seq) + byte(i)
	}
	return b
}

// VerifyPattern reports whether a CBR payload matches its frame number —
// the end-to-end integrity check used by the experiments.
func VerifyPattern(seq uint32, data []byte) bool {
	for i, v := range data {
		if v != byte(seq)+byte(i) {
			return false
		}
	}
	return true
}

// VBR is a variable-bit-rate stored source driven by a two-state Markov
// chain (scene/detail), approximating compressed video: frame sizes swing
// between a base size and burst sizes. Deterministic for a given seed.
// VBR is not safe for concurrent use.
type VBR struct {
	MeanSize  int     // average payload bytes per frame
	Burst     float64 // burst frames are Burst× the mean (e.g. 3)
	PBurst    float64 // probability of entering a burst run
	PCalm     float64 // probability of leaving a burst run
	FrameRate float64
	Count     uint32
	Seed      int64

	rng     *rand.Rand
	burstOn bool
	next    uint32
}

// Next implements Source.
func (v *VBR) Next() (Frame, bool) {
	if v.Count != 0 && v.next >= v.Count {
		return Frame{}, false
	}
	if v.rng == nil {
		seed := v.Seed
		if seed == 0 {
			seed = 1
		}
		v.rng = rand.New(rand.NewSource(seed))
	}
	if v.burstOn {
		if v.rng.Float64() < v.PCalm {
			v.burstOn = false
		}
	} else if v.rng.Float64() < v.PBurst {
		v.burstOn = true
	}
	size := v.MeanSize / 2
	if v.burstOn {
		size = int(float64(v.MeanSize) * v.Burst)
	}
	size += v.rng.Intn(v.MeanSize/4 + 1)
	seq := v.next
	v.next++
	return Frame{
		Seq:  seq,
		PTS:  time.Duration(float64(seq) / v.FrameRate * float64(time.Second)),
		Data: pattern(seq, size),
	}, true
}

// Rate implements Source.
func (v *VBR) Rate() float64 { return v.FrameRate }

// FrameBound implements Source.
func (v *VBR) FrameBound() int {
	return int(float64(v.MeanSize)*v.Burst) + v.MeanSize/4 + 1 + frameHeader
}

// Seek implements Seekable.
func (v *VBR) Seek(n uint32) { v.next = n }

// Captions is a low-rate text track whose every frame carries an event
// mark — the caption-association scenario of §3.6.
type Captions struct {
	Lines     []string
	FrameRate float64 // captions per second
	Event     core.EventPattern

	next uint32
}

// Next implements Source.
func (c *Captions) Next() (Frame, bool) {
	if int(c.next) >= len(c.Lines) {
		return Frame{}, false
	}
	seq := c.next
	c.next++
	return Frame{
		Seq:   seq,
		PTS:   time.Duration(float64(seq) / c.FrameRate * float64(time.Second)),
		Event: c.Event,
		Data:  []byte(c.Lines[seq]),
	}, true
}

// Rate implements Source.
func (c *Captions) Rate() float64 { return c.FrameRate }

// FrameBound implements Source.
func (c *Captions) FrameBound() int {
	max := 0
	for _, l := range c.Lines {
		if len(l) > max {
			max = len(l)
		}
	}
	return max + frameHeader
}

// Seek implements Seekable.
func (c *Captions) Seek(n uint32) { c.next = n }

// SinkStats summarises what a measuring sink observed.
type SinkStats struct {
	// Received counts frames delivered.
	Received int
	// Gaps counts missing frame numbers (drops/losses).
	Gaps int
	// OutOfOrder counts frames whose number went backwards.
	OutOfOrder int
	// Corrupt counts frames failing the CBR pattern check (when enabled).
	Corrupt int
	// First and Last are delivery times of the first and last frame.
	First, Last time.Time
	// MeanInterArrival and MaxInterArrival characterise delivery pacing.
	MeanInterArrival time.Duration
	MaxInterArrival  time.Duration
	// JitterStdDev is the standard deviation of inter-arrival times —
	// the delivery-jitter figure the flow-control ablation compares.
	JitterStdDev time.Duration
	// LateFrames counts frames delivered more than two nominal periods
	// after their schedule (anchored at the first delivery, indexed by
	// frame number so losses do not shift the schedule). The two-period
	// margin keeps the count insensitive to sub-percent cadence noise.
	LateFrames int
	// EarlyFrames counts frames delivered more than two periods ahead of
	// schedule — delivery faster than the media rate, which a real
	// playout device must buffer or discard.
	EarlyFrames int
	// PaceError is |mean inter-arrival - nominal period| / period: how
	// far delivery pacing is from isochronous (0 = perfect).
	PaceError float64
	// Stalls counts user-visible delivery pauses: inter-arrival gaps
	// longer than three nominal periods, the point where a playout
	// device with a typical jitter buffer runs dry and the viewer sees
	// a freeze. Requires NominalRate.
	Stalls int
	// MaxStall is the longest such pause (zero when none occurred).
	MaxStall time.Duration
}

// Sink is a measuring media sink. It is safe for concurrent use.
type Sink struct {
	// VerifyCBR enables the payload pattern check.
	VerifyCBR bool
	// NominalRate, when set, enables schedule-lateness accounting.
	NominalRate float64

	mu       sync.Mutex
	times    []time.Time
	seqs     []uint32
	lastSeq  int64
	received int
	gaps     int
	ooo      int
	corrupt  int
}

// NewSink returns an empty measuring sink.
func NewSink() *Sink { return &Sink{lastSeq: -1} }

// Consume records the delivery of one frame at time now.
func (s *Sink) Consume(f Frame, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.received++
	s.times = append(s.times, now)
	s.seqs = append(s.seqs, f.Seq)
	switch {
	case int64(f.Seq) > s.lastSeq+1:
		s.gaps += int(int64(f.Seq) - s.lastSeq - 1)
		s.lastSeq = int64(f.Seq)
	case int64(f.Seq) <= s.lastSeq:
		s.ooo++
	default:
		s.lastSeq = int64(f.Seq)
	}
	if s.VerifyCBR && !VerifyPattern(f.Seq, f.Data) {
		s.corrupt++
	}
}

// Received returns the frames delivered so far.
func (s *Sink) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// LastSeq returns the highest frame number seen, or -1.
func (s *Sink) LastSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Stats computes the summary.
func (s *Sink) Stats() SinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SinkStats{
		Received:   s.received,
		Gaps:       s.gaps,
		OutOfOrder: s.ooo,
		Corrupt:    s.corrupt,
	}
	if len(s.times) == 0 {
		return st
	}
	st.First = s.times[0]
	st.Last = s.times[len(s.times)-1]
	if len(s.times) < 2 {
		return st
	}
	var sum, sumSq float64
	var maxIA time.Duration
	for i := 1; i < len(s.times); i++ {
		ia := s.times[i].Sub(s.times[i-1])
		if ia > maxIA {
			maxIA = ia
		}
		x := ia.Seconds()
		sum += x
		sumSq += x * x
	}
	n := float64(len(s.times) - 1)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	st.MeanInterArrival = time.Duration(mean * float64(time.Second))
	st.MaxInterArrival = maxIA
	st.JitterStdDev = time.Duration(math.Sqrt(variance) * float64(time.Second))
	if s.NominalRate > 0 {
		period := time.Duration(float64(time.Second) / s.NominalRate)
		stallBound := 3 * period
		for i := 1; i < len(s.times); i++ {
			if ia := s.times[i].Sub(s.times[i-1]); ia > stallBound {
				st.Stalls++
				if ia > st.MaxStall {
					st.MaxStall = ia
				}
			}
		}
		first := s.seqs[0]
		margin := 2 * period
		for i, at := range s.times {
			due := st.First.Add(time.Duration(s.seqs[i]-first) * period)
			if at.After(due.Add(margin)) {
				st.LateFrames++
			} else if at.Before(due.Add(-margin)) {
				st.EarlyFrames++
			}
		}
		if period > 0 {
			diff := st.MeanInterArrival - period
			if diff < 0 {
				diff = -diff
			}
			st.PaceError = float64(diff) / float64(period)
		}
	}
	return st
}

// Progress returns the sink's media-time progress given its nominal rate:
// how many seconds of media have been delivered.
func (s *Sink) Progress(rate float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(s.received) / rate * float64(time.Second))
}

// SyncPair measures the on-going temporal relationship between two sinks
// playing related tracks (lip-sync, §3.6): the skew is the difference of
// their media-time progress.
type SyncPair struct {
	A, B         *Sink
	RateA, RateB float64

	mu      sync.Mutex
	maxSkew time.Duration
	samples int
	sumAbs  time.Duration
}

// Sample records the instantaneous skew; call it periodically.
func (p *SyncPair) Sample() time.Duration {
	skew := p.A.Progress(p.RateA) - p.B.Progress(p.RateB)
	if skew < 0 {
		skew = -skew
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples++
	p.sumAbs += skew
	if skew > p.maxSkew {
		p.maxSkew = skew
	}
	return skew
}

// MaxSkew returns the largest sampled skew.
func (p *SyncPair) MaxSkew() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxSkew
}

// MeanSkew returns the mean absolute sampled skew.
func (p *SyncPair) MeanSkew() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.samples == 0 {
		return 0
	}
	return p.sumAbs / time.Duration(p.samples)
}

// String renders the pair's summary.
func (p *SyncPair) String() string {
	return fmt.Sprintf("skew max=%v mean=%v", p.MaxSkew(), p.MeanSkew())
}
