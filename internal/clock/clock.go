// Package clock abstracts time so that every timing-sensitive component of
// the system — transport rate control, QoS monitoring, orchestration
// intervals — can run against the real clock in examples, a manually
// stepped clock in unit tests, or a deliberately drifting clock when the
// experiments need to reproduce the inter-host clock-rate discrepancies
// that cause long-running streams to fall out of synchronisation (§3.6).
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used throughout the system. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d of
	// this clock's time has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine after d of this clock's time
	// has elapsed, and returns a handle that can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration
}

// Timer is a cancellable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the pending call; it reports whether the call was
	// still pending.
	Stop() bool
}

// System is the real-time clock backed by package time.
// The zero value is ready to use.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (System) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Since implements Clock.
func (System) Since(t time.Time) time.Duration { return time.Since(t) }

// Skewed derives a drifting clock from a base clock: its time advances at
// Rate times the base rate, offset so that base time Epoch maps to
// Epoch+Offset. A Rate of 1.0001 models a crystal running 100 ppm fast —
// the "inevitable discrepancies between remote clock rates" of §3.6.
//
// Sleep and After convert the requested skewed-clock duration back into
// base-clock time, so a component sleeping "one frame period" on a fast
// clock wakes slightly early in base time, exactly as real hardware would.
type Skewed struct {
	Base   Clock
	Rate   float64       // skewed seconds per base second; must be > 0
	Offset time.Duration // added to the mapped time
	Epoch  time.Time     // base instant at which skewed time == Epoch+Offset
}

// NewSkewed returns a skewed view of base starting now, running at rate
// (e.g. 1.0002 = 200 ppm fast) with an initial offset.
func NewSkewed(base Clock, rate float64, offset time.Duration) *Skewed {
	return &Skewed{Base: base, Rate: rate, Offset: offset, Epoch: base.Now()}
}

// Now implements Clock.
func (s *Skewed) Now() time.Time {
	elapsed := s.Base.Now().Sub(s.Epoch)
	scaled := time.Duration(float64(elapsed) * s.Rate)
	return s.Epoch.Add(scaled + s.Offset)
}

// baseDuration converts a skewed-clock duration to base-clock time.
func (s *Skewed) baseDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) / s.Rate)
}

// Sleep implements Clock.
func (s *Skewed) Sleep(d time.Duration) { s.Base.Sleep(s.baseDuration(d)) }

// After implements Clock.
func (s *Skewed) After(d time.Duration) <-chan time.Time {
	return s.Base.After(s.baseDuration(d))
}

// AfterFunc implements Clock.
func (s *Skewed) AfterFunc(d time.Duration, f func()) Timer {
	return s.Base.AfterFunc(s.baseDuration(d), f)
}

// Since implements Clock.
func (s *Skewed) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Manual is a virtual clock advanced explicitly by tests. Sleepers and
// timers fire when Advance moves the clock past their deadlines. The zero
// value is not ready; use NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time // nil for func waiters
	f        func()
	stopped  bool
}

// NewManual returns a manual clock reading start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d, firing every sleeper and timer
// whose deadline is reached, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		var next *manualWaiter
		for _, w := range m.waiters {
			if w.stopped || w.deadline.After(target) {
				continue
			}
			if next == nil || w.deadline.Before(next.deadline) {
				next = w
			}
		}
		if next == nil {
			break
		}
		m.now = next.deadline
		next.stopped = true
		f, ch, now := next.f, next.ch, m.now
		if f != nil {
			m.mu.Unlock()
			f()
			m.mu.Lock()
		} else {
			ch <- now
		}
	}
	m.now = target
	// Compact the waiter list.
	live := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	m.waiters = live
	m.mu.Unlock()
}

// Sleep implements Clock. It blocks until Advance passes the deadline.
func (m *Manual) Sleep(d time.Duration) { <-m.After(d) }

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &manualWaiter{deadline: m.now.Add(d), ch: ch})
	return ch
}

// AfterFunc implements Clock.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{deadline: m.now.Add(d), f: f}
	if d <= 0 {
		w.stopped = true
		go f()
		return (*manualTimer)(nil)
	}
	m.waiters = append(m.waiters, w)
	return &manualTimer{m: m, w: w}
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

type manualTimer struct {
	m *Manual
	w *manualWaiter
}

// Stop implements Timer.
func (t *manualTimer) Stop() bool {
	if t == nil {
		return false
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	was := !t.w.stopped
	t.w.stopped = true
	return was
}
