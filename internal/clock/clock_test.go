package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSystemNowAdvances(t *testing.T) {
	var c System
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("system clock did not advance across Sleep")
	}
	if c.Since(a) <= 0 {
		t.Fatal("Since returned non-positive duration")
	}
}

func TestSystemAfterFires(t *testing.T) {
	var c System
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestSystemAfterFunc(t *testing.T) {
	var c System
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("AfterFunc never fired")
	}
}

func TestSystemAfterFuncStop(t *testing.T) {
	var c System
	var fired atomic.Bool
	tm := c.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestManualNowFixedUntilAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(3 * time.Second)
	if got, want := m.Now(), start.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestManualAfterFiresAtDeadline(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if want := time.Unix(10, 0); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Sleep(5 * time.Second)
		close(woke)
	}()
	// Give the sleeper a moment to register; then advance.
	for i := 0; ; i++ {
		m.mu.Lock()
		n := len(m.waiters)
		m.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("sleeper never registered")
		}
		time.Sleep(time.Millisecond)
	}
	m.Advance(5 * time.Second)
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake on Advance")
	}
	wg.Wait()
}

func TestManualTimersFireInDeadlineOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var mu sync.Mutex
	var order []int
	record := func(i int) func() {
		return func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	// Funcs run in their own goroutines per the Clock contract, but
	// Manual fires them synchronously in deadline order during Advance.
	m.AfterFunc(3*time.Second, record(3))
	m.AfterFunc(1*time.Second, record(1))
	m.AfterFunc(2*time.Second, record(2))
	m.Advance(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestManualAfterFuncStop(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var fired atomic.Bool
	tm := m.AfterFunc(time.Second, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	m.Advance(2 * time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestSkewedRateScalesElapsedTime(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	s := NewSkewed(m, 2.0, 0) // runs twice as fast
	m.Advance(10 * time.Second)
	if got := s.Since(time.Unix(0, 0)); got != 20*time.Second {
		t.Fatalf("skewed elapsed = %v, want 20s", got)
	}
}

func TestSkewedOffset(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	s := NewSkewed(m, 1.0, 5*time.Second)
	if got, want := s.Now(), time.Unix(105, 0); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestSkewedSleepConvertsToBaseTime(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	s := NewSkewed(m, 2.0, 0)
	ch := s.After(10 * time.Second) // should need only 5s of base time
	m.Advance(5 * time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("fast clock's After(10s) should fire after 5s base time")
	}
}

func TestSkewedSlowClock(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	s := NewSkewed(m, 0.5, 0)
	m.Advance(10 * time.Second)
	if got := s.Since(time.Unix(0, 0)); got != 5*time.Second {
		t.Fatalf("slow skewed elapsed = %v, want 5s", got)
	}
}

func TestSkewedPPMDrift(t *testing.T) {
	// A 200ppm-fast clock gains 200µs per second.
	m := NewManual(time.Unix(0, 0))
	s := NewSkewed(m, 1.0002, 0)
	m.Advance(time.Second)
	gain := s.Since(time.Unix(0, 0)) - time.Second
	if gain < 150*time.Microsecond || gain > 250*time.Microsecond {
		t.Fatalf("200ppm clock gained %v over 1s, want ~200µs", gain)
	}
}
