// Package platform is the object-based distributed application platform
// of §2.2 — the ANSA-derived layer applications actually program against.
// It provides the two communication abstractions the paper describes:
//
//   - Invocation: location-independent, delay-bounded invocation of named
//     operations in ADT interfaces, in the style of the REX RPC protocol
//     (at-most-once execution, bounded by a caller deadline);
//   - Streams: first-class continuous-media connection objects expressed
//     in media-specific QoS terms (frame rates, frame sizes, latency)
//     that the platform maps onto transport QoS, created with the remote
//     connection facility (§3.5) and orchestrated through the HLO
//     service (§5).
//
// One Capsule runs per host; it owns that host's object registry,
// devices, streams and the platform ends of the orchestration service.
package platform

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/pdu"
	"cmtos/internal/transport"
)

// Ref is a location-independent interface reference: a named service on
// some capsule.
type Ref struct {
	Host core.HostID
	Name string
}

// String renders "h2/name".
func (r Ref) String() string { return fmt.Sprintf("%v/%s", r.Host, r.Name) }

// Object is a registered ADT interface: named operations over opaque
// (gob-encoded) arguments.
type Object interface {
	// Invoke executes one operation. Errors are relayed to the caller.
	Invoke(op string, args []byte) ([]byte, error)
}

// Ops is the convenience Object: a map of operation handlers.
type Ops map[string]func(args []byte) ([]byte, error)

// Invoke implements Object.
func (o Ops) Invoke(op string, args []byte) ([]byte, error) {
	fn, ok := o[op]
	if !ok {
		return nil, fmt.Errorf("platform: unknown operation %q", op)
	}
	return fn(args)
}

// Invocation errors.
var (
	ErrDeadline  = errors.New("platform: invocation deadline exceeded")
	ErrNoService = errors.New("platform: no such service")
)

// RemoteError is an application error relayed from the invoked object.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "platform: remote: " + e.Msg }

// rpcMsg is the REX-like wire format carried in transport datagrams.
type rpcMsg struct {
	Call    uint64
	Reply   bool
	Service string
	Op      string
	Err     string
	Body    []byte
}

func (m *rpcMsg) marshal() []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes()
}

func parseRPC(p []byte) (*rpcMsg, error) {
	var m rpcMsg
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Capsule is one host's platform runtime.
type Capsule struct {
	ent *transport.Entity

	mu       sync.Mutex
	services map[string]Object
	nextCall uint64
	pending  map[uint64]chan *rpcMsg
	// executed caches replies for at-most-once semantics across REX
	// retransmissions, keyed by caller host and call id.
	executed map[execKey]*rpcMsg
	execHist []execKey // FIFO eviction
}

type execKey struct {
	host core.HostID
	call uint64
}

// execCacheSize bounds the at-most-once reply cache.
const execCacheSize = 1024

// platformTSAP is the well-known TSAP of the capsule's RPC endpoint.
const platformTSAP core.TSAP = 1

// NewCapsule attaches a platform capsule to a transport entity; it takes
// over the entity's datagram channel.
func NewCapsule(ent *transport.Entity) *Capsule {
	c := &Capsule{
		ent:      ent,
		services: make(map[string]Object),
		pending:  make(map[uint64]chan *rpcMsg),
		executed: make(map[execKey]*rpcMsg),
	}
	ent.SetDatagramHandler(platformTSAP, c.onDatagram)
	return c
}

// Entity returns the capsule's transport entity.
func (c *Capsule) Entity() *transport.Entity { return c.ent }

// Host returns the capsule's host.
func (c *Capsule) Host() core.HostID { return c.ent.Host() }

// Register publishes an object under a name.
func (c *Capsule) Register(name string, obj Object) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.services[name]; dup {
		return fmt.Errorf("platform: service %q already registered", name)
	}
	c.services[name] = obj
	return nil
}

// Unregister removes a named object.
func (c *Capsule) Unregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.services, name)
}

// Invoke performs a delay-bounded, at-most-once invocation of ref.op.
// The deadline bounds the whole exchange including retransmissions — the
// "delay bounded communication required for the real-time control of
// multimedia applications" (§2.2).
func (c *Capsule) Invoke(ref Ref, op string, args []byte, deadline time.Duration) ([]byte, error) {
	c.mu.Lock()
	c.nextCall++
	call := c.nextCall
	ch := make(chan *rpcMsg, 1)
	c.pending[call] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, call)
		c.mu.Unlock()
	}()

	req := &rpcMsg{Call: call, Service: ref.Name, Op: op, Body: args}
	payload := req.marshal()
	clk := c.ent.Clock()
	start := clk.Now()
	const attempts = 3
	per := deadline / attempts
	for i := 0; i < attempts; i++ {
		if err := c.ent.SendDatagram(ref.Host, &pdu.Datagram{
			SrcTSAP: platformTSAP, DstTSAP: platformTSAP, Payload: payload,
		}); err != nil {
			return nil, err
		}
		remaining := deadline - clk.Since(start)
		wait := per
		if wait > remaining {
			wait = remaining
		}
		if wait <= 0 {
			break
		}
		select {
		case reply := <-ch:
			if reply.Err != "" {
				return nil, &RemoteError{Msg: reply.Err}
			}
			return reply.Body, nil
		case <-clk.After(wait):
		}
	}
	return nil, ErrDeadline
}

// onDatagram demultiplexes RPC requests and replies.
func (c *Capsule) onDatagram(from core.HostID, d *pdu.Datagram) {
	m, err := parseRPC(d.Payload)
	if err != nil {
		return
	}
	if m.Reply {
		c.mu.Lock()
		ch := c.pending[m.Call]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
		return
	}
	// Request: at-most-once — replay the cached reply for a retransmit.
	key := execKey{host: from, call: m.Call}
	c.mu.Lock()
	if cached, dup := c.executed[key]; dup {
		c.mu.Unlock()
		if cached != nil {
			c.send(from, cached)
		}
		return
	}
	c.executed[key] = nil // execution in progress
	svc := c.services[m.Service]
	c.mu.Unlock()

	reply := &rpcMsg{Call: m.Call, Reply: true}
	if svc == nil {
		reply.Err = ErrNoService.Error() + ": " + m.Service
	} else {
		body, err := svc.Invoke(m.Op, m.Body)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Body = body
		}
	}
	c.mu.Lock()
	c.executed[key] = reply
	c.execHist = append(c.execHist, key)
	for len(c.execHist) > execCacheSize {
		delete(c.executed, c.execHist[0])
		c.execHist = c.execHist[1:]
	}
	c.mu.Unlock()
	c.send(from, reply)
}

func (c *Capsule) send(to core.HostID, m *rpcMsg) {
	_ = c.ent.SendDatagram(to, &pdu.Datagram{
		SrcTSAP: platformTSAP, DstTSAP: platformTSAP, Payload: m.marshal(),
	})
}

// encode gob-encodes an RPC argument or result structure.
func encode(v any) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v)
	return buf.Bytes()
}

// decode gob-decodes into out.
func decode(p []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(out)
}
