package platform

import (
	"fmt"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
)

// OrchStream couples a stream with its synchronisation requirements.
type OrchStream struct {
	Stream StreamInfo
	// Rate overrides the stream's media rate for the synchronisation
	// relationship (0 adopts Stream.Rate).
	Rate float64
	// MaxDrop is the per-interval drop budget (Table 6).
	MaxDrop int
}

// OrchPolicy is the application-visible orchestration policy — "policies
// include constraints on how strict the continuous synchronisation should
// be and actions to take on failure" (§5).
type OrchPolicy struct {
	// Interval is the regulation interval (0 = 100ms).
	Interval time.Duration
	// MaxLagIntervals before compensation (0 = 3).
	MaxLagIntervals int
}

// agentSlot is a hosted HLO agent.
type agentSlot struct {
	agent *hlo.Agent
}

// registerOrchService publishes the "_orch" ADT interface: the HLO's
// platform-level service (§5). The HLO selects the orchestrating node
// and creates the agent there; the caller gets back an interface
// reference it controls the session through — here, an OrchSession.
func (p *Platform) registerOrchService() {
	_ = p.cap.Register("_orch", Ops{
		"create":  p.opOrchCreate,
		"prime":   p.opOrchPrime,
		"start":   p.opOrchStart,
		"stop":    p.opOrchStop,
		"release": p.opOrchRelease,
		"status":  p.opOrchStatus,
		"skew":    p.opOrchSkew,
	})
}

type orchCreateArgs struct {
	Streams  []OrchStream
	Interval time.Duration
	MaxLag   int
}
type orchCreateReply struct{ Session core.SessionID }

func (p *Platform) opOrchCreate(args []byte) ([]byte, error) {
	var a orchCreateArgs
	if err := decode(args, &a); err != nil {
		return nil, err
	}
	if p.llo == nil {
		return nil, fmt.Errorf("platform: host %v has no orchestrator", p.Host())
	}
	cfgs := make([]hlo.StreamConfig, 0, len(a.Streams))
	for _, os := range a.Streams {
		rate := os.Rate
		if rate == 0 {
			rate = os.Stream.Rate
		}
		cfgs = append(cfgs, hlo.StreamConfig{
			Desc:    os.Stream.Desc(),
			Rate:    rate,
			MaxDrop: os.MaxDrop,
		})
	}
	p.mu.Lock()
	p.nextSess++
	sid := core.SessionID(uint32(p.Host())<<16 | p.nextSess)
	p.mu.Unlock()
	agent, err := hlo.New(p.llo, p.ent.Clock(), sid, cfgs, hlo.Policy{
		Interval:        a.Interval,
		MaxLagIntervals: a.MaxLag,
	})
	if err != nil {
		return nil, err
	}
	if err := agent.Setup(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.agents[sid] = &agentSlot{agent: agent}
	p.mu.Unlock()
	return encode(orchCreateReply{Session: sid}), nil
}

type orchSessionArgs struct {
	Session core.SessionID
	Flush   bool
}

func (p *Platform) agentFor(args []byte) (*hlo.Agent, orchSessionArgs, error) {
	var a orchSessionArgs
	if err := decode(args, &a); err != nil {
		return nil, a, err
	}
	p.mu.Lock()
	slot, ok := p.agents[a.Session]
	p.mu.Unlock()
	if !ok {
		return nil, a, fmt.Errorf("no orchestration session %v", a.Session)
	}
	return slot.agent, a, nil
}

func (p *Platform) opOrchPrime(args []byte) ([]byte, error) {
	agent, a, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	if err := agent.Prime(a.Flush); err != nil {
		return nil, err
	}
	return encode(struct{}{}), nil
}

func (p *Platform) opOrchStart(args []byte) ([]byte, error) {
	agent, _, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	if err := agent.Start(); err != nil {
		return nil, err
	}
	return encode(struct{}{}), nil
}

func (p *Platform) opOrchStop(args []byte) ([]byte, error) {
	agent, _, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	if err := agent.Stop(); err != nil {
		return nil, err
	}
	return encode(struct{}{}), nil
}

func (p *Platform) opOrchRelease(args []byte) ([]byte, error) {
	agent, a, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	agent.Release()
	p.mu.Lock()
	delete(p.agents, a.Session)
	p.mu.Unlock()
	return encode(struct{}{}), nil
}

type orchStatusReply struct{ Statuses []hlo.StreamStatus }

func (p *Platform) opOrchStatus(args []byte) ([]byte, error) {
	agent, _, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	return encode(orchStatusReply{Statuses: agent.Status()}), nil
}

type orchSkewReply struct{ Skew time.Duration }

func (p *Platform) opOrchSkew(args []byte) ([]byte, error) {
	agent, _, err := p.agentFor(args)
	if err != nil {
		return nil, err
	}
	return encode(orchSkewReply{Skew: agent.Skew()}), nil
}

// OrchSession is the application's handle on an orchestrated group: an
// interface reference onto the HLO agent at the orchestrating node,
// driven by invocation (§5: "this is passed back to the initiating
// application, and enables the application to control the on-going
// orchestration session via invocation").
type OrchSession struct {
	p    *Platform
	node core.HostID
	sid  core.SessionID
}

// Node returns the orchestrating node.
func (o *OrchSession) Node() core.HostID { return o.node }

// Session returns the session id.
func (o *OrchSession) Session() core.SessionID { return o.sid }

// Orchestrate forms a continuous-synchronisation relationship over the
// given streams: the HLO selects the orchestrating node (the common node,
// Fig. 5), creates an agent there, and returns the session handle.
func (p *Platform) Orchestrate(streams []OrchStream, pol OrchPolicy) (*OrchSession, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("platform: no streams to orchestrate")
	}
	descs := make([]orch.VCDesc, 0, len(streams))
	for _, os := range streams {
		descs = append(descs, os.Stream.Desc())
	}
	node, err := hlo.SelectOrchestratingNode(descs)
	if err != nil {
		return nil, err
	}
	body, err := p.cap.Invoke(Ref{Host: node, Name: "_orch"}, "create",
		encode(orchCreateArgs{Streams: streams, Interval: pol.Interval, MaxLag: pol.MaxLagIntervals}),
		invokeTimeout)
	if err != nil {
		return nil, err
	}
	var r orchCreateReply
	if err := decode(body, &r); err != nil {
		return nil, err
	}
	return &OrchSession{p: p, node: node, sid: r.Session}, nil
}

// call performs one session operation via invocation.
func (o *OrchSession) call(op string, flush bool) error {
	_, err := o.p.cap.Invoke(Ref{Host: o.node, Name: "_orch"}, op,
		encode(orchSessionArgs{Session: o.sid, Flush: flush}), invokeTimeout)
	return err
}

// Prime fills all sink buffers without delivering (§6.2.1).
func (o *OrchSession) Prime(flush bool) error { return o.call("prime", flush) }

// Start begins (or resumes) synchronised play-out (§6.2.2).
func (o *OrchSession) Start() error { return o.call("start", false) }

// Stop freezes the group (§6.2.3).
func (o *OrchSession) Stop() error { return o.call("stop", false) }

// Release ends the session.
func (o *OrchSession) Release() error { return o.call("release", false) }

// Status fetches per-stream regulation state from the agent.
func (o *OrchSession) Status() ([]hlo.StreamStatus, error) {
	body, err := o.p.cap.Invoke(Ref{Host: o.node, Name: "_orch"}, "status",
		encode(orchSessionArgs{Session: o.sid}), invokeTimeout)
	if err != nil {
		return nil, err
	}
	var r orchStatusReply
	if err := decode(body, &r); err != nil {
		return nil, err
	}
	return r.Statuses, nil
}

// Skew fetches the agent's current inter-stream synchronisation error.
func (o *OrchSession) Skew() (time.Duration, error) {
	body, err := o.p.cap.Invoke(Ref{Host: o.node, Name: "_orch"}, "skew",
		encode(orchSessionArgs{Session: o.sid}), invokeTimeout)
	if err != nil {
		return 0, err
	}
	var r orchSkewReply
	if err := decode(body, &r); err != nil {
		return 0, err
	}
	return r.Skew, nil
}
