package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

var sys clock.System

type rig struct {
	net  *netem.Network
	plat map[core.HostID]*Platform
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	nw := netem.New(sys)
	link := netem.LinkConfig{Bandwidth: 50e6, Delay: 200 * time.Microsecond, QueueLen: 4096}
	for id := core.HostID(1); id <= core.HostID(n); id++ {
		if err := nw.AddHost(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	for a := core.HostID(1); a <= core.HostID(n); a++ {
		for b := a + 1; b <= core.HostID(n); b++ {
			if err := nw.AddLink(a, b, link); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := nw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	rm := resv.New(nw)
	r := &rig{net: nw, plat: make(map[core.HostID]*Platform)}
	for id := core.HostID(1); id <= core.HostID(n); id++ {
		e, err := transport.NewEntity(id, sys, nw, rm, transport.Config{RingSlots: 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		l := orch.New(e)
		t.Cleanup(l.Close)
		r.plat[id] = NewPlatform(NewCapsule(e), l)
	}
	return r
}

func TestInvokeLocalService(t *testing.T) {
	r := newRig(t, 2)
	calls := 0
	_ = r.plat[1].Capsule().Register("adder", Ops{
		"add": func(args []byte) ([]byte, error) {
			var in [2]int
			if err := decode(args, &in); err != nil {
				return nil, err
			}
			calls++
			return encode(in[0] + in[1]), nil
		},
	})
	body, err := r.plat[2].Capsule().Invoke(Ref{Host: 1, Name: "adder"}, "add",
		encode([2]int{20, 22}), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	if err := decode(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestInvokeUnknownServiceAndOp(t *testing.T) {
	r := newRig(t, 2)
	_, err := r.plat[2].Capsule().Invoke(Ref{Host: 1, Name: "ghost"}, "x", nil, time.Second)
	if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	_ = r.plat[1].Capsule().Register("thing", Ops{})
	_, err = r.plat[2].Capsule().Invoke(Ref{Host: 1, Name: "thing"}, "nope", nil, time.Second)
	if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("err = %v, want RemoteError for unknown op", err)
	}
}

func TestInvokeDeadline(t *testing.T) {
	r := newRig(t, 2)
	_ = r.plat[1].Capsule().Register("slow", Ops{
		"wait": func([]byte) ([]byte, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})
	start := time.Now()
	_, err := r.plat[2].Capsule().Invoke(Ref{Host: 1, Name: "slow"}, "wait", nil, 150*time.Millisecond)
	if err != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline not honoured")
	}
}

func TestInvokeAtMostOnce(t *testing.T) {
	// Lossy control path: REX retransmits, but the operation must
	// execute at most once.
	nw := netem.New(sys)
	link := netem.LinkConfig{Bandwidth: 50e6, Delay: 200 * time.Microsecond,
		Loss: netem.Bernoulli{P: 0.3}, Seed: 3, QueueLen: 4096}
	_ = nw.AddHost(1, nil)
	_ = nw.AddHost(2, nil)
	_ = nw.AddLink(1, 2, link)
	if err := nw.Start(); err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	rm := resv.New(nw)
	e1, _ := transport.NewEntity(1, sys, nw, rm, transport.Config{})
	e2, _ := transport.NewEntity(2, sys, nw, rm, transport.Config{})
	defer e1.Close()
	defer e2.Close()
	c1, c2 := NewCapsule(e1), NewCapsule(e2)
	var execs atomic.Int32
	_ = c1.Register("counter", Ops{
		"bump": func([]byte) ([]byte, error) {
			execs.Add(1)
			return encode(struct{}{}), nil
		},
	})
	succeeded := 0
	for i := 0; i < 20; i++ {
		if _, err := c2.Invoke(Ref{Host: 1, Name: "counter"}, "bump", nil, time.Second); err == nil {
			succeeded++
		}
	}
	if succeeded == 0 {
		t.Fatal("no invocation survived the lossy path")
	}
	if int(execs.Load()) != succeeded {
		// executions beyond successes would mean a retransmitted
		// request re-executed (at-most-once violated); fewer would mean
		// a phantom success.
		if int(execs.Load()) < succeeded {
			t.Fatalf("phantom successes: %d succeeded, %d executed", succeeded, execs.Load())
		}
		// More executions than successes can only happen if a reply was
		// lost after execution — the caller saw a deadline, not a
		// success. That is legal for at-most-once.
		t.Logf("note: %d executed, %d confirmed (lost replies)", execs.Load(), succeeded)
	}
}

func TestMediaQoSSpecDefaults(t *testing.T) {
	q := MediaQoS{FrameRate: 25, FrameBound: 4096}
	s := q.Spec()
	if s.Throughput.Preferred != 25 || s.Throughput.Acceptable != 12.5 {
		t.Errorf("throughput window: %+v", s.Throughput)
	}
	if s.Delay.Acceptable != 0.5 {
		t.Errorf("delay acceptable = %v", s.Delay.Acceptable)
	}
	if s.PER.Acceptable != 0.05 {
		t.Errorf("PER acceptable = %v", s.PER.Acceptable)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rq := MediaQoS{FrameRate: 10, FrameBound: 100, Reliable: true}
	if rq.class().Corrects() != true {
		t.Error("Reliable must select a correcting class")
	}
	if rq.Spec().PER.Acceptable != 1 {
		t.Error("Reliable spec must tolerate raw PER")
	}
}

// camSink builds a 3-host platform rig with a camera producer on host 1
// and a recording consumer on host 2.
func camSink(t *testing.T, r *rig, frames *atomic.Int64) {
	t.Helper()
	err := r.plat[1].RegisterProducer("camera", 100, 256, func() media.Source {
		return &media.CBR{Size: 64, FrameRate: 100}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = r.plat[2].RegisterConsumer("monitor", func(f media.Frame, at time.Time) {
		frames.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateStreamRemoteConnect(t *testing.T) {
	// The microscope scenario: host 3 (the scientist's workstation)
	// connects the camera on host 1 to the monitor on host 2 (§3.5).
	r := newRig(t, 3)
	var frames atomic.Int64
	camSink(t, r, &frames)
	info, err := r.plat[3].CreateStream(
		DeviceRef{Host: 1, Name: "camera"},
		DeviceRef{Host: 2, Name: "monitor"},
		MediaQoS{}) // adopt the camera's terms
	if err != nil {
		t.Fatal(err)
	}
	if info.Rate != 100 || info.Source != 1 || info.Sink != 2 {
		t.Fatalf("info = %+v", info)
	}
	if info.Contract.Throughput != 100 {
		t.Fatalf("contract throughput = %g", info.Contract.Throughput)
	}
	deadline := time.After(3 * time.Second)
	for frames.Load() < 20 {
		select {
		case <-deadline:
			t.Fatalf("only %d frames flowed", frames.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Remote close from the initiator.
	if err := r.plat[3].CloseStream(info); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	n := frames.Load()
	time.Sleep(100 * time.Millisecond)
	if after := frames.Load(); after > n+2 {
		t.Fatalf("stream flowed after CloseStream: %d -> %d", n, after)
	}
}

func TestCreateStreamUnknownDevice(t *testing.T) {
	r := newRig(t, 3)
	_, err := r.plat[3].CreateStream(
		DeviceRef{Host: 1, Name: "nope"},
		DeviceRef{Host: 2, Name: "also-nope"}, MediaQoS{})
	if err == nil {
		t.Fatal("CreateStream with unknown devices succeeded")
	}
}

func TestCreateStreamRejectsConsumerAsSource(t *testing.T) {
	r := newRig(t, 3)
	var frames atomic.Int64
	camSink(t, r, &frames)
	_, err := r.plat[3].CreateStream(
		DeviceRef{Host: 2, Name: "monitor"},
		DeviceRef{Host: 2, Name: "monitor"}, MediaQoS{})
	if err == nil {
		t.Fatal("consumer accepted as producer")
	}
}

func TestRenegotiateStreamViaPlatform(t *testing.T) {
	r := newRig(t, 3)
	var frames atomic.Int64
	camSink(t, r, &frames)
	info, err := r.plat[3].CreateStream(
		DeviceRef{Host: 1, Name: "camera"},
		DeviceRef{Host: 2, Name: "monitor"}, MediaQoS{})
	if err != nil {
		t.Fatal(err)
	}
	// Monochrome downgrade: halve the rate (§3.3's dynamic QoS example).
	contract, err := r.plat[3].RenegotiateStream(info, MediaQoS{FrameRate: 50, FrameBound: 256})
	if err != nil {
		t.Fatal(err)
	}
	if contract.Throughput != 50 {
		t.Fatalf("renegotiated throughput = %g", contract.Throughput)
	}
}

func TestOrchestratedLipSyncViaPlatform(t *testing.T) {
	// Full-stack lip-sync: video (25fps) and audio (250 chunks/s — the
	// paper's 10:1 ratio) from two servers to one workstation, created
	// and orchestrated entirely through the platform API.
	r := newRig(t, 3)
	if err := r.plat[1].RegisterProducer("film.video", 25, 1024, func() media.Source {
		return &media.CBR{Size: 512, FrameRate: 25}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.plat[2].RegisterProducer("film.audio", 250, 128, func() media.Source {
		return &media.CBR{Size: 64, FrameRate: 250}
	}); err != nil {
		t.Fatal(err)
	}
	video, audio := media.NewSink(), media.NewSink()
	if err := r.plat[3].RegisterConsumer("tv", func(f media.Frame, at time.Time) {
		video.Consume(f, at)
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.plat[3].RegisterConsumer("speaker", func(f media.Frame, at time.Time) {
		audio.Consume(f, at)
	}); err != nil {
		t.Fatal(err)
	}
	vs, err := r.plat[3].CreateStream(DeviceRef{1, "film.video"}, DeviceRef{3, "tv"}, MediaQoS{})
	if err != nil {
		t.Fatal(err)
	}
	as, err := r.plat[3].CreateStream(DeviceRef{2, "film.audio"}, DeviceRef{3, "speaker"}, MediaQoS{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := r.plat[3].Orchestrate([]OrchStream{
		{Stream: vs, MaxDrop: 2},
		{Stream: as, MaxDrop: 5},
	}, OrchPolicy{Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Node() != 3 {
		t.Fatalf("orchestrating node = %v, want common sink 3", sess.Node())
	}
	if err := sess.Prime(false); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second)
	pair := &media.SyncPair{A: video, B: audio, RateA: 25, RateB: 250}
	skew := pair.Sample()
	if video.Received() < 10 || audio.Received() < 100 {
		t.Fatalf("flow too thin: video %d audio %d", video.Received(), audio.Received())
	}
	if skew > 400*time.Millisecond {
		t.Fatalf("lip-sync skew = %v", skew)
	}
	if agentSkew, err := sess.Skew(); err != nil || agentSkew > 400*time.Millisecond {
		t.Fatalf("agent skew = %v err %v", agentSkew, err)
	}
	sts, err := sess.Status()
	if err != nil || len(sts) != 2 {
		t.Fatalf("status: %v %v", sts, err)
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
	// Operations on a released session fail.
	if err := sess.Start(); err == nil {
		t.Fatal("Start on released session succeeded")
	}
}

func TestOrchestrateNoCommonNode(t *testing.T) {
	r := newRig(t, 4)
	streams := []OrchStream{
		{Stream: StreamInfo{VC: 1, Source: 1, Sink: 2, Rate: 10}},
		{Stream: StreamInfo{VC: 2, Source: 3, Sink: 4, Rate: 10}},
	}
	if _, err := r.plat[1].Orchestrate(streams, OrchPolicy{}); err == nil {
		t.Fatal("orchestration without a common node succeeded")
	}
}

func TestRegisterDuplicates(t *testing.T) {
	r := newRig(t, 2)
	mk := func() media.Source { return &media.CBR{Size: 8, FrameRate: 1} }
	if err := r.plat[1].RegisterProducer("p", 1, 8, mk); err != nil {
		t.Fatal(err)
	}
	if err := r.plat[1].RegisterProducer("p", 1, 8, mk); err == nil {
		t.Fatal("duplicate producer accepted")
	}
	if err := r.plat[1].RegisterConsumer("c", func(media.Frame, time.Time) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.plat[1].RegisterConsumer("c", func(media.Frame, time.Time) {}); err == nil {
		t.Fatal("duplicate consumer accepted")
	}
	if err := r.plat[1].Capsule().Register("_stream", Ops{}); err == nil {
		t.Fatal("duplicate service accepted")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	r := newRig(t, 2)
	_ = r.plat[1].Capsule().Register("echo", Ops{
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arg := encode(fmt.Sprintf("msg-%d", i))
			body, err := r.plat[2].Capsule().Invoke(Ref{Host: 1, Name: "echo"}, "echo", arg, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			var got string
			_ = decode(body, &got)
			if got != fmt.Sprintf("msg-%d", i) {
				errs <- fmt.Errorf("mismatched reply %q for %d", got, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
