package platform

import (
	"fmt"
	"sync"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/orch"
	"cmtos/internal/qos"
	"cmtos/internal/transport"
)

// MediaQoS expresses stream quality in the media-specific terms the
// platform's Stream services use (§2.2); the platform maps them onto the
// transport's QoS tolerance levels.
type MediaQoS struct {
	// FrameRate is the preferred frame rate; zero adopts the producing
	// device's nominal rate.
	FrameRate float64
	// MinFrameRate is the lowest acceptable rate; zero means half the
	// preferred rate.
	MinFrameRate float64
	// FrameBound is the largest frame in bytes; zero adopts the
	// producing device's bound.
	FrameBound int
	// Latency is the acceptable end-to-end delay; zero means 500ms.
	Latency time.Duration
	// JitterBound is the acceptable delay variation; zero means
	// Latency/2.
	JitterBound time.Duration
	// LossTolerance is the acceptable frame-loss fraction; zero means
	// 5%. Loss-intolerant media should also set Reliable.
	LossTolerance float64
	// Reliable selects the error-correcting class of service (§3.4).
	Reliable bool
}

// Spec maps the media terms onto transport QoS tolerance levels.
func (m MediaQoS) Spec() qos.Spec {
	min := m.MinFrameRate
	if min <= 0 {
		min = m.FrameRate / 2
	}
	lat := m.Latency
	if lat <= 0 {
		lat = 500 * time.Millisecond
	}
	jit := m.JitterBound
	if jit <= 0 {
		jit = lat / 2
	}
	loss := m.LossTolerance
	if loss <= 0 {
		loss = 0.05
	}
	if m.Reliable {
		loss = 1 // correction recovers losses; don't fail negotiation on PER
	}
	return qos.Spec{
		Throughput:  qos.Tolerance{Preferred: m.FrameRate, Acceptable: min},
		MaxOSDUSize: m.FrameBound,
		Delay:       qos.CeilTolerance{Preferred: lat.Seconds() / 10, Acceptable: lat.Seconds()},
		Jitter:      qos.CeilTolerance{Preferred: jit.Seconds() / 10, Acceptable: jit.Seconds()},
		PER:         qos.CeilTolerance{Preferred: 0, Acceptable: loss},
		BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-3},
		Guarantee:   qos.Soft,
	}
}

// class returns the class of service for the media terms.
func (m MediaQoS) class() qos.Class {
	if m.Reliable {
		return qos.ClassDetectCorrectIndicate
	}
	return qos.ClassDetectIndicate
}

// DeviceRef names a registered media device on some capsule.
type DeviceRef struct {
	Host core.HostID
	Name string
}

// StreamInfo describes a created stream — the platform-level handle the
// application passes to orchestration.
type StreamInfo struct {
	VC       core.VCID
	Source   core.HostID
	Sink     core.HostID
	Rate     float64 // media frame rate in frames/sec
	Contract qos.Contract
}

// Desc returns the orchestration-layer description of the stream.
func (s StreamInfo) Desc() orch.VCDesc {
	return orch.VCDesc{VC: s.VC, Source: s.Source, Sink: s.Sink}
}

// Consumer receives delivered frames at a sink device.
type Consumer func(f media.Frame, at time.Time)

// Platform is the per-host application platform: a capsule plus the
// stream and orchestration services. Construct with NewPlatform.
type Platform struct {
	cap *Capsule
	ent *transport.Entity
	llo *orch.LLO

	mu        sync.Mutex
	producers map[string]*device
	consumers map[string]*device
	nextTSAP  core.TSAP
	streams   map[core.VCID]*runningStream
	agents    map[core.SessionID]*agentSlot
	nextSess  uint32
}

type device struct {
	name    string
	tsap    core.TSAP
	source  func() media.Source // producers
	consume Consumer            // consumers
	rate    float64
	bound   int
}

type runningStream struct {
	send *transport.SendVC
	stop chan struct{}
}

// NewPlatform builds the platform runtime for one host. The LLO may be
// nil on hosts that never orchestrate (pure device hosts still need one
// if their VCs are to be orchestrated — pass it).
func NewPlatform(cap *Capsule, llo *orch.LLO) *Platform {
	p := &Platform{
		cap:       cap,
		ent:       cap.Entity(),
		llo:       llo,
		producers: make(map[string]*device),
		consumers: make(map[string]*device),
		nextTSAP:  0x100,
		streams:   make(map[core.VCID]*runningStream),
		agents:    make(map[core.SessionID]*agentSlot),
	}
	_ = cap.Register("_stream", Ops{
		"resolve": p.opResolve,
		"close":   p.opClose,
		"reneg":   p.opReneg,
	})
	p.registerOrchService()
	return p
}

// Capsule returns the platform's capsule.
func (p *Platform) Capsule() *Capsule { return p.cap }

// Host returns the platform's host.
func (p *Platform) Host() core.HostID { return p.ent.Host() }

// invokeTimeout bounds platform-internal invocations.
const invokeTimeout = 3 * time.Second

// RegisterProducer publishes a media source device: factory is called
// once per stream created from the device, and the resulting source is
// pumped into the stream at its nominal rate on this host's clock.
func (p *Platform) RegisterProducer(name string, rate float64, bound int, factory func() media.Source) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.producers[name]; dup {
		return fmt.Errorf("platform: producer %q exists", name)
	}
	p.nextTSAP++
	d := &device{name: name, tsap: p.nextTSAP, source: factory, rate: rate, bound: bound}
	p.producers[name] = d
	return p.ent.Attach(d.tsap, transport.UserCallbacks{
		OnSendReady: func(s *transport.SendVC) { p.startPump(d, s) },
	})
}

// RegisterConsumer publishes a media sink device; every frame delivered
// on a stream terminating at the device is handed to consume.
func (p *Platform) RegisterConsumer(name string, consume Consumer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.consumers[name]; dup {
		return fmt.Errorf("platform: consumer %q exists", name)
	}
	p.nextTSAP++
	d := &device{name: name, tsap: p.nextTSAP, consume: consume}
	p.consumers[name] = d
	return p.ent.Attach(d.tsap, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) { p.startDrain(d, rv) },
	})
}

// startPump launches the producing application thread for one stream.
func (p *Platform) startPump(d *device, s *transport.SendVC) {
	stop := make(chan struct{})
	p.mu.Lock()
	p.streams[s.ID()] = &runningStream{send: s, stop: stop}
	p.mu.Unlock()
	go func() {
		defer func() {
			p.mu.Lock()
			delete(p.streams, s.ID())
			p.mu.Unlock()
		}()
		_ = media.Pump(p.ent.Clock(), d.source(), s, stop)
	}()
}

// startDrain launches the consuming application thread for one stream.
func (p *Platform) startDrain(d *device, rv *transport.RecvVC) {
	go func() {
		for {
			u, err := rv.Read()
			if err != nil {
				return
			}
			f, err := media.UnmarshalFrame(u.Payload)
			if err != nil {
				continue
			}
			f.Event = u.Event
			d.consume(f, p.ent.Clock().Now())
		}
	}()
}

// resolveArgs/resolveReply are the "_stream.resolve" exchange.
type resolveArgs struct{ Name string }
type resolveReply struct {
	TSAP     core.TSAP
	Rate     float64
	Bound    int
	Producer bool
}

func (p *Platform) opResolve(args []byte) ([]byte, error) {
	var a resolveArgs
	if err := decode(args, &a); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.producers[a.Name]; ok {
		return encode(resolveReply{TSAP: d.tsap, Rate: d.rate, Bound: d.bound, Producer: true}), nil
	}
	if d, ok := p.consumers[a.Name]; ok {
		return encode(resolveReply{TSAP: d.tsap}), nil
	}
	return nil, fmt.Errorf("no device %q", a.Name)
}

type closeArgs struct{ VC core.VCID }

func (p *Platform) opClose(args []byte) ([]byte, error) {
	var a closeArgs
	if err := decode(args, &a); err != nil {
		return nil, err
	}
	p.mu.Lock()
	rs, ok := p.streams[a.VC]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no stream %v", a.VC)
	}
	close(rs.stop)
	if err := rs.send.Close(core.ReasonUserInitiated); err != nil {
		return nil, err
	}
	return encode(struct{}{}), nil
}

type renegArgs struct {
	VC core.VCID
	Q  MediaQoS
}
type renegReply struct{ Contract qos.Contract }

func (p *Platform) opReneg(args []byte) ([]byte, error) {
	var a renegArgs
	if err := decode(args, &a); err != nil {
		return nil, err
	}
	p.mu.Lock()
	rs, ok := p.streams[a.VC]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no stream %v", a.VC)
	}
	contract, err := rs.send.Renegotiate(a.Q.Spec())
	if err != nil {
		return nil, err
	}
	return encode(renegReply{Contract: contract}), nil
}

// CreateStream connects a producer device to a consumer device using the
// remote connection facility (§3.5): this platform is the initiator, and
// the device hosts' platforms are the source and sink users. Media QoS
// fields left zero adopt the producing device's parameters.
func (p *Platform) CreateStream(src, dst DeviceRef, q MediaQoS) (StreamInfo, error) {
	var rs resolveReply
	body, err := p.cap.Invoke(Ref{Host: src.Host, Name: "_stream"}, "resolve",
		encode(resolveArgs{Name: src.Name}), invokeTimeout)
	if err != nil {
		return StreamInfo{}, fmt.Errorf("resolving source %v: %w", src, err)
	}
	if err := decode(body, &rs); err != nil {
		return StreamInfo{}, err
	}
	if !rs.Producer {
		return StreamInfo{}, fmt.Errorf("platform: %v is not a producer", src)
	}
	var rd resolveReply
	body, err = p.cap.Invoke(Ref{Host: dst.Host, Name: "_stream"}, "resolve",
		encode(resolveArgs{Name: dst.Name}), invokeTimeout)
	if err != nil {
		return StreamInfo{}, fmt.Errorf("resolving sink %v: %w", dst, err)
	}
	if err := decode(body, &rd); err != nil {
		return StreamInfo{}, err
	}
	if q.FrameRate == 0 {
		q.FrameRate = rs.Rate
	}
	if q.FrameBound == 0 {
		q.FrameBound = rs.Bound
	}
	tup := core.ConnectTuple{
		Initiator: core.Addr{Host: p.Host(), TSAP: platformTSAP},
		Source:    core.Addr{Host: src.Host, TSAP: rs.TSAP},
		Dest:      core.Addr{Host: dst.Host, TSAP: rd.TSAP},
	}
	vc, contract, err := p.ent.ConnectRemote(tup, qos.ProfileCMRate, q.class(), q.Spec())
	if err != nil {
		return StreamInfo{}, err
	}
	return StreamInfo{
		VC: vc, Source: src.Host, Sink: dst.Host,
		Rate: q.FrameRate, Contract: contract,
	}, nil
}

// CloseStream releases a stream from anywhere (remote release, §4.1.1).
func (p *Platform) CloseStream(s StreamInfo) error {
	_, err := p.cap.Invoke(Ref{Host: s.Source, Name: "_stream"}, "close",
		encode(closeArgs{VC: s.VC}), invokeTimeout)
	return err
}

// RenegotiateStream performs T-Renegotiate on a stream in media terms,
// from anywhere.
func (p *Platform) RenegotiateStream(s StreamInfo, q MediaQoS) (qos.Contract, error) {
	body, err := p.cap.Invoke(Ref{Host: s.Source, Name: "_stream"}, "reneg",
		encode(renegArgs{VC: s.VC, Q: q}), invokeTimeout)
	if err != nil {
		return qos.Contract{}, err
	}
	var r renegReply
	if err := decode(body, &r); err != nil {
		return qos.Contract{}, err
	}
	return r.Contract, nil
}
