package relay_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/netem"
	"cmtos/internal/netif/faultnet"
	"cmtos/internal/qos"
	"cmtos/internal/relay"
	"cmtos/internal/resv"
	"cmtos/internal/session"
	"cmtos/internal/stats"
	"cmtos/internal/transport"
)

var sys clock.System

const (
	relayTSAP  = core.TSAP(50) // relay ingest listener
	egressTSAP = core.TSAP(55) // relay-side TSAP egress VCs originate from
	leafTSAP   = core.TSAP(60) // leaf sink listener
)

// rig is an in-process star-of-stars: every host on one emulated network
// behind a single fault injector, transport configured with fast liveness
// so crash tests resolve quickly.
type rig struct {
	fn    *faultnet.Network
	rm    *resv.Manager
	hosts map[core.HostID]*transport.Entity
}

// buildRig wires n hosts over one emulated network. A nil links slice
// means full mesh (the small unit-test rigs); the benchmark passes an
// explicit star so 64 leaves don't cost O(n²) links.
func buildRig(t testing.TB, n int, links [][2]core.HostID) *rig {
	t.Helper()
	nw := netem.New(sys)
	link := netem.LinkConfig{Bandwidth: 50e6, Delay: 200 * time.Microsecond, QueueLen: 4096}
	for id := core.HostID(1); id <= core.HostID(n); id++ {
		if err := nw.AddHost(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if links == nil {
		for a := core.HostID(1); a <= core.HostID(n); a++ {
			for b := a + 1; b <= core.HostID(n); b++ {
				links = append(links, [2]core.HostID{a, b})
			}
		}
	}
	for _, l := range links {
		if err := nw.AddLink(l[0], l[1], link); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Start(); err != nil {
		t.Fatal(err)
	}
	fn := faultnet.Wrap(nw, faultnet.Options{Seed: 42, Clock: sys})
	rm := resv.New(nw)
	r := &rig{fn: fn, rm: rm, hosts: make(map[core.HostID]*transport.Entity)}
	cfg := transport.Config{
		RingSlots:         16,
		ConnectTimeout:    time.Second,
		KeepaliveInterval: 200 * time.Millisecond,
		KeepaliveMisses:   2,
	}
	for id := core.HostID(1); id <= core.HostID(n); id++ {
		e, err := transport.NewEntity(id, sys, fn, rm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.hosts[id] = e
	}
	t.Cleanup(func() {
		for _, e := range r.hosts {
			e.Close()
		}
		fn.Close()
	})
	return r
}

func relaySpec(rate float64) qos.Spec {
	return qos.Spec{
		Throughput:  qos.Tolerance{Preferred: rate, Acceptable: rate / 10},
		MaxOSDUSize: 512,
		Delay:       qos.CeilTolerance{Preferred: 0.001, Acceptable: 0.5},
		Jitter:      qos.CeilTolerance{Preferred: 0.001, Acceptable: 0.5},
		PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.5},
		BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-2},
		Guarantee:   qos.Soft,
	}
}

// leafRec drains a leaf's sink VCs and records every delivered sequence.
type leafRec struct {
	mu   sync.Mutex
	seqs []core.OSDUSeq
}

func (l *leafRec) snapshot() []core.OSDUSeq {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]core.OSDUSeq(nil), l.seqs...)
}

func (l *leafRec) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.seqs)
}

// listenLeaf attaches a recording sink at the host's leafTSAP. A resumed
// VC arrives as a fresh OnRecvReady, so the reader survives re-parenting.
func listenLeaf(t testing.TB, e *transport.Entity) *leafRec {
	t.Helper()
	l := &leafRec{}
	if err := e.Attach(leafTSAP, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) {
			go func() {
				for {
					u, err := rv.Read()
					if err != nil {
						return
					}
					l.mu.Lock()
					l.seqs = append(l.seqs, u.Seq)
					l.mu.Unlock()
				}
			}()
		},
	}); err != nil {
		t.Fatal(err)
	}
	return l
}

func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// spliceOf waits for the relay to accept the ingest VC and build a splice.
func spliceOf(t testing.TB, n *relay.Node, vc core.VCID) *relay.Splice {
	t.Helper()
	var sp *relay.Splice
	if !waitUntil(5*time.Second, func() bool {
		var ok bool
		sp, ok = n.Splice(vc)
		return ok
	}) {
		t.Fatalf("relay never built a splice for ingest VC %v", vc)
	}
	return sp
}

// assertExact checks the leaf saw exactly 0..total-1 in order.
func assertExact(t *testing.T, who string, l *leafRec, total int) {
	t.Helper()
	if !waitUntil(15*time.Second, func() bool { return l.count() >= total }) {
		t.Fatalf("%s delivered %d/%d OSDUs", who, l.count(), total)
	}
	seqs := l.snapshot()
	if len(seqs) != total {
		t.Fatalf("%s delivered %d OSDUs, want exactly %d (duplicates)", who, len(seqs), total)
	}
	for i, got := range seqs {
		if got != core.OSDUSeq(i) {
			t.Fatalf("%s order broken at %d: got seq %d (gap or duplicate)", who, i, got)
		}
	}
}

// TestSpliceFanout is the basic tree data plane: source → relay → two
// leaves, every OSDU re-published boundary-intact to both, counted once
// per hop.
func TestSpliceFanout(t *testing.T) {
	const total = 200
	r := buildRig(t, 4, nil) // 1=source 2=relay 3,4=leaves
	reg := stats.NewRegistry()
	rn := relay.NewNode(r.hosts[2], relay.Config{Stats: reg})
	if err := rn.Listen(relayTSAP); err != nil {
		t.Fatal(err)
	}
	leaves := []*leafRec{listenLeaf(t, r.hosts[3]), listenLeaf(t, r.hosts[4])}

	sv, err := r.hosts[1].Connect(transport.ConnectRequest{
		SrcTSAP: core.TSAP(10),
		Dest:    core.Addr{Host: 2, TSAP: relayTSAP},
		Class:   qos.ClassDetectIndicate,
		Spec:    relaySpec(20e3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := spliceOf(t, rn, sv.ID())
	for _, leaf := range []core.HostID{3, 4} {
		if _, err := sp.AddSink(egressTSAP, core.Addr{Host: leaf, TSAP: leafTSAP}); err != nil {
			t.Fatalf("AddSink(%d): %v", leaf, err)
		}
	}
	if got := sp.Fanout(); got != 2 {
		t.Fatalf("fanout = %d, want 2", got)
	}

	payload := make([]byte, 32)
	for i := 0; i < total; i++ {
		if _, err := sv.Write(payload, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, l := range leaves {
		assertExact(t, fmt.Sprintf("leaf %d", 3+i), l, total)
	}

	// One splice acceptance per OSDU, not per egress.
	rep := sp.LastReport()
	if rep.Spliced != total {
		t.Errorf("spliced = %d, want %d", rep.Spliced, total)
	}
	if rep.Head != total {
		t.Errorf("head = %d, want %d", rep.Head, total)
	}
	// The hop counters must not double-charge the fan-out: the ingest
	// delivered `total` once, and each egress sent `total` fresh OSDUs.
	if got := sv.Sent(); got != total {
		t.Errorf("source sent = %d, want %d", got, total)
	}
	for _, eg := range sp.Egresses() {
		if got := eg.Written(); got != total {
			t.Errorf("egress %v written = %d, want %d", eg.ID(), got, total)
		}
		if got := eg.Replayed(); got != 0 {
			t.Errorf("egress %v replayed = %d, want 0 on the live path", eg.ID(), got)
		}
	}
}

// TestSpliceMidStreamJoin adds a sink while the stream is flowing: the
// leaf joins at the splice head and sees a contiguous suffix — no phantom
// loss for the prefix it never subscribed to, no gap after the join.
func TestSpliceMidStreamJoin(t *testing.T) {
	const before, after = 100, 100
	r := buildRig(t, 3, nil) // 1=source 2=relay 3=leaf
	rn := relay.NewNode(r.hosts[2], relay.Config{})
	if err := rn.Listen(relayTSAP); err != nil {
		t.Fatal(err)
	}
	leaf := listenLeaf(t, r.hosts[3])

	sv, err := r.hosts[1].Connect(transport.ConnectRequest{
		SrcTSAP: core.TSAP(10),
		Dest:    core.Addr{Host: 2, TSAP: relayTSAP},
		Class:   qos.ClassDetectIndicate,
		Spec:    relaySpec(20e3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := spliceOf(t, rn, sv.ID())

	payload := make([]byte, 32)
	for i := 0; i < before; i++ {
		if _, err := sv.Write(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Let the splice absorb a non-trivial prefix before the join.
	if !waitUntil(10*time.Second, func() bool { return sp.Head() > 0 }) {
		t.Fatal("splice head never advanced")
	}
	if _, err := sp.AddSink(egressTSAP, core.Addr{Host: 3, TSAP: leafTSAP}); err != nil {
		t.Fatal(err)
	}
	joined := sp.Head() // the leaf owes at most [head at AddSink, ...)
	for i := 0; i < after; i++ {
		if _, err := sv.Write(payload, 0); err != nil {
			t.Fatal(err)
		}
	}

	total := core.OSDUSeq(before + after)
	if !waitUntil(15*time.Second, func() bool {
		s := leaf.snapshot()
		return len(s) > 0 && s[len(s)-1] == total-1
	}) {
		t.Fatalf("leaf never reached the stream tail: %d delivered", leaf.count())
	}
	seqs := leaf.snapshot()
	if seqs[0] > joined {
		t.Errorf("first delivered seq %d is after the join head %d (gap)", seqs[0], joined)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("suffix not contiguous at %d: %d then %d", i, seqs[i-1], seqs[i])
		}
	}
}

// TestSpliceAdopt is the re-parent continuity check: a leaf fed through
// relay A is adopted by relay B (which carries the same stream) after A
// crashes, and the leaf's delivered sequence crosses the failure with
// zero gaps and zero duplicates.
func TestSpliceAdopt(t *testing.T) {
	const prefix, total = 60, 200
	r := buildRig(t, 4, nil) // 1=source 2=relayA 3=relayB 4=leaf
	var nodes [2]*relay.Node
	for i, h := range []core.HostID{2, 3} {
		nodes[i] = relay.NewNode(r.hosts[h], relay.Config{})
		if err := nodes[i].Listen(relayTSAP); err != nil {
			t.Fatal(err)
		}
	}
	leaf := listenLeaf(t, r.hosts[4])

	// The source feeds both direct children the same OSDU sequence — two
	// VCs, lock-step writes, so either relay can stand in for the other.
	feeds := make([]*transport.SendVC, 2)
	for i, h := range []core.HostID{2, 3} {
		sv, err := r.hosts[1].Connect(transport.ConnectRequest{
			SrcTSAP: core.TSAP(10 + i),
			Dest:    core.Addr{Host: h, TSAP: relayTSAP},
			Class:   qos.ClassDetectIndicate,
			Spec:    relaySpec(20e3),
		})
		if err != nil {
			t.Fatal(err)
		}
		feeds[i] = sv
	}
	spA := spliceOf(t, nodes[0], feeds[0].ID())
	spB := spliceOf(t, nodes[1], feeds[1].ID())

	evc, err := spA.AddSink(egressTSAP, core.Addr{Host: 4, TSAP: leafTSAP})
	if err != nil {
		t.Fatal(err)
	}
	leafVC := evc.ID()

	payload := make([]byte, 32)
	for i := 0; i < prefix; i++ {
		for _, sv := range feeds {
			if _, err := sv.Write(payload, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !waitUntil(10*time.Second, func() bool { return leaf.count() >= prefix/2 }) {
		t.Fatalf("leaf stalled before the crash: %d delivered", leaf.count())
	}

	// Kill relay A mid-stream. The leaf's sink VC dies by keepalive and
	// leaves a resume tombstone; relay B adopts it from its own history.
	r.fn.Crash(2)

	rp := session.NewReparenter(sys, session.ReparentPolicy{
		Attempts: 40, Backoff: 100 * time.Millisecond,
	})
	res := rp.Run([]session.Orphan{
		{VC: leafVC, Leaf: core.Addr{Host: 4, TSAP: leafTSAP}, SrcTSAP: egressTSAP},
	}, spB)
	if res[0].State != session.ReparentAdopted {
		t.Fatalf("adoption failed after %d attempts: %v", res[0].Attempts, res[0].Err)
	}
	if rep := spB.LastReport(); rep.Fanout != 1 {
		t.Errorf("survivor fanout = %d, want 1", rep.Fanout)
	}

	// The stream continues through the survivor only.
	for i := prefix; i < total; i++ {
		if _, err := feeds[1].Write(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	assertExact(t, "re-parented leaf", leaf, total)
	if rep := spB.LastReport(); rep.Replayed == 0 && res[0].ResumedFrom < spB.Head() {
		t.Errorf("adoption at watermark %d behind head required replay, but none counted", res[0].ResumedFrom)
	}
}

// BenchmarkRelayFanout measures the 1→64 splice end to end over the
// emulated network: allocations per source OSDU across tap, retention and
// 64 TryPublish fan-outs (plus the transport wire path on every hop).
func BenchmarkRelayFanout(b *testing.B) {
	const fan = 64
	links := [][2]core.HostID{{1, 2}}
	for i := 0; i < fan; i++ {
		links = append(links, [2]core.HostID{2, core.HostID(3 + i)})
	}
	r := buildRig(b, 2+fan, links) // 1=source 2=relay 3..66=leaves
	rn := relay.NewNode(r.hosts[2], relay.Config{RetainSlots: 8})
	if err := rn.Listen(relayTSAP); err != nil {
		b.Fatal(err)
	}
	leaves := make([]*leafRec, fan)
	for i := 0; i < fan; i++ {
		leaves[i] = listenLeaf(b, r.hosts[core.HostID(3+i)])
	}
	sv, err := r.hosts[1].Connect(transport.ConnectRequest{
		SrcTSAP: core.TSAP(10),
		Dest:    core.Addr{Host: 2, TSAP: relayTSAP},
		Class:   qos.ClassDetectIndicate,
		Spec:    relaySpec(20e3),
	})
	if err != nil {
		b.Fatal(err)
	}
	sp := spliceOf(b, rn, sv.ID())
	for i := 0; i < fan; i++ {
		if _, err := sp.AddSink(egressTSAP, core.Addr{Host: core.HostID(3 + i), TSAP: leafTSAP}); err != nil {
			b.Fatalf("AddSink(%d): %v", 3+i, err)
		}
	}
	payload := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Write(payload, 0); err != nil {
			b.Fatal(err)
		}
	}
	// The op under test is source-write → every leaf delivered.
	if !waitUntil(60*time.Second, func() bool {
		for _, l := range leaves {
			if l.count() < b.N {
				return false
			}
		}
		return true
	}) {
		b.Fatalf("fan-out never drained: %d/%d at slowest leaf", leaves[0].count(), b.N)
	}
	b.StopTimer()
}
