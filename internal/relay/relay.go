// Package relay generalizes the point-to-point VC model into fan-out
// distribution trees: a relay entity splices one upstream (ingest) sink VC
// onto N downstream (egress) source VCs, re-publishing every delivered
// OSDU with its boundaries and sequence numbering intact. Trees of relays
// let one source reach arbitrarily many sinks while its own uplink carries
// only its direct children's VCs — the Livepeer-style origin→edge topology
// that ROADMAP item 1 calls for.
//
// Data plane: the splice installs a transport delivery tap on the ingest
// VC, so in-order OSDUs are handed to it on the ingest shard with no
// application thread and no extra queue; each OSDU's payload is freshly
// allocated by reassembly, so the splice retains it without copying and
// fans it out via SendVC.TryPublish (which preserves the sequence). When
// any egress ring is full the tap refuses delivery, which backpressures
// the relay's upstream — pressure propagates source-ward hop by hop.
//
// Control plane: every spliced OSDU is also kept in a bounded retainer, so
// the splice can adopt a leaf that lost its parent: Adopt resumes the
// leaf's old VC from this relay (the PR 4 resurrection machinery, keyed to
// the splice's delivery watermark), replays the retained gap, and then
// hands the egress to the live tap — no accepted OSDU is lost or
// duplicated across the re-parent. AddSink joins a new leaf mid-stream at
// the current splice head.
package relay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cmtos/internal/cbuf"
	"cmtos/internal/core"
	"cmtos/internal/qos"
	"cmtos/internal/stats"
	"cmtos/internal/transport"
)

// Config parameterizes a relay node.
type Config struct {
	// Stats receives the relay/<vc>/ counters; nil disables metrics.
	Stats *stats.Registry
	// RetainSlots bounds each splice's replay history in OSDUs
	// (default 1024). Adoption of a leaf whose watermark has aged out of
	// the history fails rather than silently losing data.
	RetainSlots int
	// RetainAge bounds the age of retained OSDUs (default 30s, matching
	// the transport resume window).
	RetainAge time.Duration
}

func (c Config) withDefaults() Config {
	if c.RetainSlots == 0 {
		c.RetainSlots = 1024
	}
	if c.RetainAge == 0 {
		c.RetainAge = 30 * time.Second
	}
	return c
}

// Node is one relay entity: it accepts ingest VCs on a listening TSAP and
// wraps each in a Splice. The same transport entity may simultaneously be
// a source, a sink, and a relay — a splice is just a VC pair pattern.
type Node struct {
	e   *transport.Entity
	cfg Config

	mu      sync.Mutex
	splices map[core.VCID]*Splice
}

// NewNode wraps a transport entity as a relay.
func NewNode(e *transport.Entity, cfg Config) *Node {
	return &Node{e: e, cfg: cfg.withDefaults(), splices: make(map[core.VCID]*Splice)}
}

// Entity returns the underlying transport entity.
func (n *Node) Entity() *transport.Entity { return n.e }

// Listen attaches the relay to a TSAP: every VC connected (or resumed)
// with that TSAP as sink becomes a splice ingest. A resumed ingest
// reattaches to its existing splice, keeping the egress set and replay
// history across an upstream failure.
func (n *Node) Listen(t core.TSAP) error {
	return n.e.Attach(t, transport.UserCallbacks{
		OnRecvReady: func(r *transport.RecvVC) { n.Accept(r) },
	})
}

// Accept wires an ingest VC into a (new or surviving) splice and returns
// it. Listen calls it for every VC arriving on the relay TSAP; attach
// flows that need their own callbacks on the ingest TSAP (disconnect
// notification, admission checks) can Attach themselves and call Accept
// from OnRecvReady.
func (n *Node) Accept(r *transport.RecvVC) *Splice {
	n.mu.Lock()
	sp := n.splices[r.ID()]
	if sp == nil {
		sc := n.cfg.Stats.Scope(fmt.Sprintf("relay/%d", uint32(r.ID())))
		sp = &Splice{
			n:  n,
			id: r.ID(),
			rt: cbuf.NewRetainer(n.e.Clock(), n.cfg.RetainSlots, n.cfg.RetainAge),
			si: spliceInstr{
				fanout:    sc.Gauge("fanout"),
				spliced:   sc.Counter("spliced"),
				replayed:  sc.Counter("replayed"),
				reparents: sc.Counter("reparents"),
			},
		}
		n.splices[r.ID()] = sp
	}
	n.mu.Unlock()
	sp.attachIngest(r)
	return sp
}

// Splice returns the splice built on the given ingest VC.
func (n *Node) Splice(vc core.VCID) (*Splice, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sp, ok := n.splices[vc]
	return sp, ok
}

// Splices returns every splice on the node.
func (n *Node) Splices() []*Splice {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Splice, 0, len(n.splices))
	for _, sp := range n.splices {
		out = append(out, sp)
	}
	return out
}

// spliceInstr holds a splice's registry instruments; all nil when metrics
// are disabled.
type spliceInstr struct {
	fanout    *stats.Gauge   // current egress count
	spliced   *stats.Counter // OSDUs accepted by the tap (once per OSDU, not per egress)
	replayed  *stats.Counter // OSDUs replayed out-of-band to a joining/adopted egress
	reparents *stats.Counter // leaves adopted from a failed parent
}

// Splice fans one ingest VC out onto N egress VCs.
type Splice struct {
	n  *Node
	id core.VCID
	rt *cbuf.Retainer
	si spliceInstr

	// Local tallies behind the registry mirrors, so LastReport is
	// meaningful when metrics are disabled.
	nSpliced  atomic.Uint64
	nReplayed atomic.Uint64

	mu   sync.Mutex
	in   *transport.RecvVC
	head core.OSDUSeq // one past the highest OSDU kept (the splice delivery watermark)
	eggs []*egress
}

// egress is one downstream VC and its publication cursor.
type egress struct {
	vc *transport.SendVC
	// next is the lowest sequence still owed to this egress; the tap
	// skips anything below it, making fan-out retries idempotent per
	// egress (a ring-full refusal on one egress must not duplicate the
	// OSDU on the egresses that already took it).
	next core.OSDUSeq
	// paused parks the egress during out-of-band catch-up replay (join or
	// adoption); the tap ignores it until the replay reaches the head.
	paused bool
}

// ID returns the ingest VC identifier the splice is keyed by.
func (sp *Splice) ID() core.VCID { return sp.id }

// Ingest returns the splice's current ingest VC.
func (sp *Splice) Ingest() *transport.RecvVC {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.in
}

// Head returns the splice's delivery watermark: one past the highest OSDU
// accepted from the ingest.
func (sp *Splice) Head() core.OSDUSeq {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.head
}

// Fanout returns the current egress count.
func (sp *Splice) Fanout() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.eggs)
}

// attachIngest points the splice at a (possibly successor) ingest VC and
// installs the delivery tap. On reattach after an upstream resume, every
// egress is parked and caught up from its own cursor, because the tap
// installation may drain ring-buffered OSDUs that predate it.
func (sp *Splice) attachIngest(r *transport.RecvVC) {
	sp.mu.Lock()
	sp.in = r
	eggs := make([]*egress, len(sp.eggs))
	copy(eggs, sp.eggs)
	for _, eg := range eggs {
		eg.paused = true
	}
	sp.mu.Unlock()
	r.SetDeliveryTap(sp.tap)
	for _, eg := range eggs {
		// Cursor-preserving catch-up: usually empty, it just unparks.
		_ = sp.catchUp(eg, eg.next)
	}
}

// tap is the transport delivery tap: it runs on the ingest VC's owning
// shard with the OSDU's freshly allocated payload, keeps the OSDU for
// later adopters, and fans it out. Returning false leaves the OSDU in the
// ingest's reorder stage and backpressures the upstream; the transport
// retries every RTO, and the per-egress cursor keeps the retry idempotent.
func (sp *Splice) tap(u cbuf.OSDU) bool {
	sp.mu.Lock()
	if u.Seq >= sp.head {
		// Keep exactly once, even across blocked-fanout retries.
		sp.rt.Keep(u)
		sp.head = u.Seq + 1
	}
	ok := true
	live := sp.eggs[:0]
	for _, eg := range sp.eggs {
		if eg.paused {
			live = append(live, eg)
			continue
		}
		if u.Seq >= eg.next {
			sent, err := eg.vc.TryPublish(u)
			if err != nil {
				// Egress torn down (leaf disconnected or died): reap it.
				continue
			}
			if !sent {
				ok = false
				live = append(live, eg)
				continue
			}
			eg.next = u.Seq + 1
		}
		live = append(live, eg)
	}
	reaped := len(sp.eggs) != len(live)
	sp.eggs = live
	if reaped {
		sp.si.fanout.Set(float64(len(live)))
	}
	sp.mu.Unlock()
	if ok {
		sp.nSpliced.Add(1)
		sp.si.spliced.Inc()
	}
	return ok
}

// AddSink connects a new leaf to this relay, joining the stream at the
// current splice head. The egress contract is derived from the upstream
// contract (same class, profile and throughput; a subtree can never
// promise more than its feed). srcTSAP names the relay-side TSAP the
// egress VC originates from.
func (sp *Splice) AddSink(srcTSAP core.TSAP, dest core.Addr) (*transport.SendVC, error) {
	in := sp.Ingest()
	if in == nil {
		return nil, fmt.Errorf("relay: splice %v has no ingest", sp.id)
	}
	sp.mu.Lock()
	start := sp.head
	sp.mu.Unlock()
	vc, err := sp.n.e.Connect(transport.ConnectRequest{
		SrcTSAP:  srcTSAP,
		Dest:     dest,
		Profile:  in.Profile(),
		Class:    in.Class(),
		Spec:     subtreeSpec(in.Contract()),
		StartSeq: start,
	})
	if err != nil {
		return nil, err
	}
	if err := sp.adoptEgress(vc, start); err != nil {
		_ = vc.Close(core.ReasonUserRejected)
		return nil, err
	}
	return vc, nil
}

// Adopt re-parents a leaf whose previous parent died onto this relay: it
// resumes the leaf's old VC (same VCID, new source host), replays the
// retained gap between the leaf's delivery watermark and the splice head,
// and joins the egress to the live tap. It returns the watermark the leaf
// resumed from. Adoption fails — with the leaf's continuity intact, so
// another parent can still try — when the leaf rejects the resume or the
// required history has aged out of this splice's retainer.
func (sp *Splice) Adopt(vc core.VCID, leaf core.Addr, srcTSAP core.TSAP) (core.OSDUSeq, error) {
	in := sp.Ingest()
	if in == nil {
		return 0, fmt.Errorf("relay: splice %v has no ingest", sp.id)
	}
	sp.mu.Lock()
	head := sp.head
	sp.mu.Unlock()
	self := core.Addr{Host: sp.n.e.Host(), TSAP: srcTSAP}
	svc, resumeFrom, err := sp.n.e.Resume(transport.ResumeRequest{
		VC:      vc,
		Tuple:   core.ConnectTuple{Initiator: self, Source: self, Dest: leaf},
		Profile: in.Profile(),
		Class:   in.Class(),
		Spec:    subtreeSpec(in.Contract()),
		// The successor's own numbering starts at the splice head; the
		// gap [resumeFrom, head) comes out of the retainer below. TPDU
		// numbering restarts — the resumed sink adopts the baseline.
		NextSeq: head,
	})
	if err != nil {
		return 0, err
	}
	if err := sp.adoptEgress(svc, resumeFrom); err != nil {
		_ = svc.Close(core.ReasonNoResources)
		return 0, err
	}
	sp.si.reparents.Inc()
	return resumeFrom, nil
}

// adoptEgress registers a new egress parked, then catches it up from the
// given sequence and hands it to the tap.
func (sp *Splice) adoptEgress(vc *transport.SendVC, from core.OSDUSeq) error {
	eg := &egress{vc: vc, next: from, paused: true}
	sp.mu.Lock()
	sp.eggs = append(sp.eggs, eg)
	sp.si.fanout.Set(float64(len(sp.eggs)))
	sp.mu.Unlock()
	if err := sp.catchUp(eg, from); err != nil {
		sp.dropEgress(eg)
		return err
	}
	return nil
}

// catchUp replays retained OSDUs [from, head) into a parked egress, then
// atomically unparks it at the head so the tap takes over with no gap and
// no overlap. Blocking Publish is safe here: the tap never blocks and
// never waits on this goroutine.
func (sp *Splice) catchUp(eg *egress, from core.OSDUSeq) error {
	seq := from
	for {
		sp.mu.Lock()
		if seq >= sp.head {
			eg.next = seq
			eg.paused = false
			sp.mu.Unlock()
			break
		}
		sp.mu.Unlock()
		out, missed := sp.rt.ReplayFrom(seq)
		if missed > 0 || len(out) == 0 {
			return fmt.Errorf("relay: splice %v history starts after %d (%d OSDUs aged out)",
				sp.id, seq, missed)
		}
		for _, u := range out {
			if err := eg.vc.Publish(u); err != nil {
				return err
			}
			sp.nReplayed.Add(1)
			sp.si.replayed.Inc()
			seq = u.Seq + 1
		}
	}
	// The upstream may be parked on our backpressure; poke it now that a
	// consumer made progress.
	if in := sp.Ingest(); in != nil {
		in.Nudge()
	}
	return nil
}

// dropEgress removes one egress from the fan-out set.
func (sp *Splice) dropEgress(eg *egress) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for i, cur := range sp.eggs {
		if cur == eg {
			sp.eggs = append(sp.eggs[:i], sp.eggs[i+1:]...)
			sp.si.fanout.Set(float64(len(sp.eggs)))
			return
		}
	}
}

// RemoveSink closes and drops the egress VC with the given ID.
func (sp *Splice) RemoveSink(vc core.VCID, reason core.Reason) {
	sp.mu.Lock()
	var victim *egress
	for _, eg := range sp.eggs {
		if eg.vc.ID() == vc {
			victim = eg
			break
		}
	}
	sp.mu.Unlock()
	if victim != nil {
		_ = victim.vc.Close(reason)
		sp.dropEgress(victim)
	}
}

// Egresses returns the current egress VCs.
func (sp *Splice) Egresses() []*transport.SendVC {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]*transport.SendVC, 0, len(sp.eggs))
	for _, eg := range sp.eggs {
		out = append(out, eg.vc)
	}
	return out
}

// Report aggregates the splice's per-interval view for the orchestration
// layer: the ingest's measured QoS plus the subtree's publication state.
type Report struct {
	Ingest   qos.Report
	Head     core.OSDUSeq
	Fanout   int
	Spliced  uint64
	Replayed uint64
	// MinSentSeq is the slowest egress's transmit watermark — how far the
	// least-caught-up subtree edge has progressed.
	MinSentSeq core.OSDUSeq
}

// LastReport returns the splice's current aggregate.
func (sp *Splice) LastReport() Report {
	sp.mu.Lock()
	in := sp.in
	rep := Report{
		Head:     sp.head,
		Fanout:   len(sp.eggs),
		Spliced:  sp.nSpliced.Load(),
		Replayed: sp.nReplayed.Load(),
	}
	rep.MinSentSeq = sp.head
	for _, eg := range sp.eggs {
		if s := eg.vc.SentSeq(); s < rep.MinSentSeq {
			rep.MinSentSeq = s
		}
	}
	sp.mu.Unlock()
	if in != nil {
		rep.Ingest = in.LastReport()
	}
	return rep
}

// subtreeSpec derives the QoS spec for a downstream hop from the upstream
// contract: the subtree asks for the feed's throughput (degradable to a
// tenth) and tolerates bounds no tighter than what the upstream already
// promised, with generous ceilings where the contract pinned zero.
func subtreeSpec(c qos.Contract) qos.Spec {
	ceil := func(v, floor float64) qos.CeilTolerance {
		if v < floor {
			v = floor
		}
		return qos.CeilTolerance{Preferred: 0, Acceptable: v}
	}
	return qos.Spec{
		Throughput:  qos.Tolerance{Preferred: c.Throughput, Acceptable: c.Throughput / 10},
		MaxOSDUSize: c.MaxOSDUSize,
		Delay:       ceil(c.Delay.Seconds(), 0.5),
		Jitter:      ceil(c.Jitter.Seconds(), 0.5),
		PER:         ceil(c.PER, 0.5),
		BER:         ceil(c.BER, 1e-2),
		Guarantee:   c.Guarantee,
	}
}
