// Package lab builds the experiment scenarios that regenerate every table
// and figure of the paper (see DESIGN.md's per-experiment index). Each
// scenario constructs its own emulated network, runs the workload, and
// returns measured metrics; the root benchmark harness and cmd/benchtab
// both drive these functions, so the numbers in EXPERIMENTS.md come from
// exactly the code a test run exercises.
package lab

import (
	"fmt"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/netif"
	"cmtos/internal/netif/faultnet"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/stats"
	"cmtos/internal/transport"
)

// Env is a complete emulated deployment: network, reservation manager,
// and one transport entity + LLO per host.
type Env struct {
	Net  netif.Network
	RM   *resv.Manager
	Ents map[core.HostID]*transport.Entity
	LLOs map[core.HostID]*orch.LLO
	// Fault is the fault injector wrapped around the emulated network
	// when EnvConfig.FaultSeed is set; nil otherwise.
	Fault *faultnet.Network
	// Clk is the environment's base clock (EnvConfig.Clock or the system
	// clock); everything except per-host overridden entities runs on it.
	Clk clock.Clock
	// Stats is the registry every layer of the environment reports into.
	Stats *stats.Registry
}

// EnvConfig parameterises NewEnv.
type EnvConfig struct {
	Hosts  int
	Link   netem.LinkConfig
	Trans  transport.Config
	Clocks map[core.HostID]clock.Clock // per-host clock override
	// Clock is the base clock for the network and for hosts without an
	// override. Nil selects the system clock.
	Clock clock.Clock
	// Stats is the metrics registry wired through the network links and
	// every transport entity. Nil creates a fresh registry.
	Stats *stats.Registry
	// FaultSeed, when non-zero, interposes a faultnet injector between
	// the entities and the emulated links (Env.Fault), seeded for
	// reproducible fault scenarios.
	FaultSeed int64
}

// DefaultLink is the lab's standard link: 10 Mbit/s, 2ms, light jitter.
func DefaultLink() netem.LinkConfig {
	return netem.LinkConfig{
		Bandwidth: 10e6 / 8,
		Delay:     2 * time.Millisecond,
		Jitter:    500 * time.Microsecond,
		QueueLen:  4096,
	}
}

// NewEnv builds a full mesh of hosts with entities and LLOs.
func NewEnv(cfg EnvConfig) (*Env, error) {
	base := cfg.Clock
	if base == nil {
		base = clock.System{}
	}
	reg := cfg.Stats
	if reg == nil {
		reg = stats.NewRegistry()
	}
	nw := netem.New(base)
	nw.SetStats(reg.Scope(""))
	for id := core.HostID(1); id <= core.HostID(cfg.Hosts); id++ {
		if err := nw.AddHost(id, nil); err != nil {
			return nil, err
		}
	}
	for a := core.HostID(1); a <= core.HostID(cfg.Hosts); a++ {
		for b := a + 1; b <= core.HostID(cfg.Hosts); b++ {
			if err := nw.AddLink(a, b, cfg.Link); err != nil {
				return nil, err
			}
		}
	}
	if err := nw.Start(); err != nil {
		return nil, err
	}
	// Reservations act on the raw emulated topology; the fault injector
	// (when enabled) sits between the entities and the wire, invisible to
	// admission exactly like real-world failures.
	rm := resv.New(nw)
	var net netif.Network = nw
	var fault *faultnet.Network
	if cfg.FaultSeed != 0 {
		fault = faultnet.Wrap(nw, faultnet.Options{
			Seed:  cfg.FaultSeed,
			Clock: base,
			Stats: reg.Scope(""),
		})
		net = fault
	}
	env := &Env{
		Net:   net,
		RM:    rm,
		Fault: fault,
		Ents:  make(map[core.HostID]*transport.Entity),
		LLOs:  make(map[core.HostID]*orch.LLO),
		Clk:   base,
		Stats: reg,
	}
	tcfg := cfg.Trans
	tcfg.Stats = reg
	for id := core.HostID(1); id <= core.HostID(cfg.Hosts); id++ {
		clk := base
		if c, ok := cfg.Clocks[id]; ok {
			clk = c
		}
		e, err := transport.NewEntity(id, clk, net, rm, tcfg)
		if err != nil {
			nw.Close()
			return nil, err
		}
		env.Ents[id] = e
		env.LLOs[id] = orch.New(e)
	}
	return env, nil
}

// Close tears the environment down.
func (e *Env) Close() {
	for _, l := range e.LLOs {
		l.Close()
	}
	for _, ent := range e.Ents {
		ent.Close()
	}
	e.Net.Close()
}

// CMSpec is the lab's standard CM spec at a given OSDU rate and size.
func CMSpec(rate float64, size int) qos.Spec {
	return qos.Spec{
		Throughput:  qos.Tolerance{Preferred: rate, Acceptable: rate / 4},
		MaxOSDUSize: size,
		Delay:       qos.CeilTolerance{Preferred: 0.005, Acceptable: 0.5},
		Jitter:      qos.CeilTolerance{Preferred: 0.002, Acceptable: 0.25},
		PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.2},
		BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-3},
		Guarantee:   qos.Soft,
	}
}

// Pipe is one connected VC.
type Pipe struct {
	Send *transport.SendVC
	Recv *transport.RecvVC
	Desc orch.VCDesc
}

// Connect builds a VC between two hosts; idx keeps TSAPs distinct.
func (e *Env) Connect(src, dst core.HostID, idx int, class qos.Class, profile qos.Profile, spec qos.Spec) (*Pipe, error) {
	recvCh := make(chan *transport.RecvVC, 1)
	sinkTSAP := core.TSAP(0x1000 + idx)
	if err := e.Ents[dst].Attach(sinkTSAP, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) { recvCh <- rv },
	}); err != nil {
		return nil, err
	}
	s, err := e.Ents[src].Connect(transport.ConnectRequest{
		SrcTSAP: core.TSAP(0x2000 + idx),
		Dest:    core.Addr{Host: dst, TSAP: sinkTSAP},
		Profile: profile,
		Class:   class,
		Spec:    spec,
	})
	if err != nil {
		return nil, err
	}
	select {
	case rv := <-recvCh:
		return &Pipe{Send: s, Recv: rv, Desc: orch.VCDesc{VC: s.ID(), Source: src, Sink: dst}}, nil
	case <-e.Clk.After(5 * time.Second):
		return nil, fmt.Errorf("lab: sink handle never arrived")
	}
}

// Play pumps a CBR track over the pipe and measures at the sink. It
// returns the sink once count frames have been delivered or deadline
// passed.
func (e *Env) Play(p *Pipe, rate float64, size int, count uint32, deadline time.Duration) *media.Sink {
	src := &media.CBR{Size: size, FrameRate: rate, Count: count}
	sink := media.NewSink()
	sink.VerifyCBR = true
	sink.NominalRate = rate
	stop := make(chan struct{})
	go func() { _ = media.Pump(e.Clk, src, p.Send, stop) }()
	go media.Drain(e.Clk, p.Recv, sink, stop)
	until := e.Clk.Now().Add(deadline)
	for sink.Received() < int(count) && e.Clk.Now().Before(until) {
		e.Clk.Sleep(2 * time.Millisecond)
	}
	close(stop)
	return sink
}

// Agent builds an HLO agent at node over the given streams.
func (e *Env) Agent(node core.HostID, sid core.SessionID, streams []hlo.StreamConfig, pol hlo.Policy) (*hlo.Agent, error) {
	return hlo.New(e.LLOs[node], e.Ents[node].Clock(), sid, streams, pol)
}
