package lab

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"cmtos/internal/media"
	"cmtos/internal/netif/faultnet"
	"cmtos/internal/qos"
	"cmtos/internal/transport"
)

// ---------------------------------------------------------------------------
// B9: predictive QoS guard vs the purely reactive ladder.
//
// The same media stream runs twice through the same seeded fault
// scenario: once with only the reactive degradation machinery
// (DegradeAfter and the ladder), once with the predictive guard armed on
// top of it (PredictThreshold > 0). The comparison the paper's soft
// guarantee ultimately cares about is user-visible: how many sample
// periods actually violated the contract, and how often playout stalled.

// PredictScenarios lists the fault regimes the A/B covers.
var PredictScenarios = []string{"ge-burst", "delay-ramp", "slow-partition"}

// PredictArm is one arm's measurements.
type PredictArm struct {
	// ViolatedPeriods counts T-QoS.indication deliveries at the source
	// user: sample periods that actually violated the (current) contract.
	ViolatedPeriods int
	// Delivered and LostFrames summarise the sink's ledger.
	Delivered  int
	LostFrames int
	// Stalls and MaxStall are the user-visible playout gaps (delivery
	// pauses longer than three frame periods).
	Stalls   int
	MaxStall time.Duration
	// GuardSheds/GuardReroutes/GuardRenegs count proactive actions (zero
	// in the reactive arm by construction).
	GuardSheds    int
	GuardReroutes int
	GuardRenegs   int
	// FalsePositives counts guard actions whose forecast horizon passed
	// without any observed violation.
	FalsePositives int
	// DegradeSteps counts ladder rungs the reactive streak took; the
	// proactive rungs are under GuardRenegs (the two paths share the
	// ladder position, so rungs are never repeated or skipped).
	DegradeSteps int
}

// PredictABResult is one scenario's paired measurement.
type PredictABResult struct {
	Scenario   string
	Reactive   PredictArm
	Predictive PredictArm
}

// PredictABOnce runs one scenario through both arms over the given
// duration and returns the paired measurements. Valid scenarios are the
// members of PredictScenarios.
func PredictABOnce(scenario string, dur time.Duration) (PredictABResult, error) {
	res := PredictABResult{Scenario: scenario}
	reactive, err := predictArmOnce(scenario, dur, false)
	if err != nil {
		return res, fmt.Errorf("reactive arm: %w", err)
	}
	predictive, err := predictArmOnce(scenario, dur, true)
	if err != nil {
		return res, fmt.Errorf("predictive arm: %w", err)
	}
	res.Reactive, res.Predictive = reactive, predictive
	return res, nil
}

// predictSpec is the A/B contract: throughput pinned at the media rate
// and delay/jitter bounds tight enough that the delay-ramp regime
// actually bites (the contract's late bound is delay+jitter = 20ms over
// a 2ms path). The PER ceiling is loose enough that burst losses
// surface as throughput violations — the parameter the ladder can
// genuinely relax.
func predictSpec(rate float64, size int) qos.Spec {
	s := CMSpec(rate, size)
	s.Throughput.Preferred = rate
	s.Delay = qos.CeilTolerance{Preferred: 0.015, Acceptable: 0.12}
	s.Jitter = qos.CeilTolerance{Preferred: 0.005, Acceptable: 0.05}
	s.PER = qos.CeilTolerance{Preferred: 0.4, Acceptable: 1}
	return s
}

// predictLadder relaxes hard enough that a single rung absorbs each
// regime: throughput drops a quarter (so burst-period delivery stays
// legal) and the jitter allowance quadruples (so the late bound clears
// the saturated delay ramp).
func predictLadder() []transport.DegradeStep {
	return []transport.DegradeStep{
		{Throughput: 0.75, Jitter: 4},
		{Throughput: 0.75, Jitter: 4},
	}
}

// applyPredictFault arms the scenario's fault regime on the injector.
func applyPredictFault(fn *faultnet.Network, scenario string, dur time.Duration) error {
	switch scenario {
	case "ge-burst":
		// Short bursts (mean 4 packets, under one sample period) that
		// recur every second or so: each burst drags the period's
		// delivered throughput below the violation floor but never
		// sustains a streak long enough for the reactive ladder to act.
		// Only the burst-recurrence estimator sees the next one coming.
		fn.SetGE(faultnet.GEParams{PGB: 0.01, PBG: 0.25, PG: 0, PB: 0.5})
	case "delay-ramp":
		// Congestion builds deterministically: +2ms of queueing every 40
		// packets, saturating just past the contract's delay+jitter late
		// bound but inside the bound one ladder rung buys. The trend is
		// visible many sample periods before the first late discard.
		fn.SetDelayRamp(2*time.Millisecond, 40, 30*time.Millisecond)
	case "slow-partition":
		// The source→sink direction erodes linearly over the run's back
		// half and is fully cut at the end.
		fn.SlowPartition(1, 2, dur/2)
	default:
		return fmt.Errorf("lab: unknown predict scenario %q", scenario)
	}
	return nil
}

// predictArmOnce runs one arm of one scenario.
func predictArmOnce(scenario string, dur time.Duration, predictive bool) (PredictArm, error) {
	const (
		rate = 100.0
		size = 256 // frame payload; the OSDU bound leaves header room
	)
	tcfg := transport.Config{
		SamplePeriod: 100 * time.Millisecond,
		// At 100 OSDU/s a sample period holds ten OSDUs, so one OSDU of
		// period-boundary jitter is a 10% throughput wobble; 15% slack
		// keeps that noise below the violation floor and leaves real
		// faults as the only violations either arm can commit.
		QoSSlack:      0.15,
		DegradeAfter:  2,
		DegradeLadder: predictLadder(),
	}
	if predictive {
		tcfg.PredictThreshold = 0.55
	}
	env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink(), Trans: tcfg, FaultSeed: 42})
	if err != nil {
		return PredictArm{}, err
	}
	defer env.Close()

	var violated atomic.Int64
	if err := env.Ents[1].Attach(0x2000, transport.UserCallbacks{
		OnQoS: func(transport.QoSIndication) { violated.Add(1) },
	}); err != nil {
		return PredictArm{}, err
	}
	p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, predictSpec(rate, size+64))
	if err != nil {
		return PredictArm{}, err
	}

	sink := media.NewSink()
	sink.VerifyCBR = true
	sink.NominalRate = rate
	stop := make(chan struct{})
	go func() { _ = media.Pump(env.Clk, &media.CBR{Size: size, FrameRate: rate}, p.Send, stop) }()
	go media.Drain(env.Clk, p.Recv, sink, stop)

	// Let the stream reach steady state before the weather turns, so both
	// arms' predictors see a healthy baseline first.
	env.Clk.Sleep(dur / 4)
	if err := applyPredictFault(env.Fault, scenario, dur); err != nil {
		close(stop)
		return PredictArm{}, err
	}
	env.Clk.Sleep(dur)
	close(stop)

	st := sink.Stats()
	arm := PredictArm{
		ViolatedPeriods: int(violated.Load()),
		Delivered:       st.Received,
		LostFrames:      st.Gaps,
		Stalls:          st.Stalls,
		MaxStall:        st.MaxStall,
	}
	snap := env.Stats.Snapshot()
	for name, v := range snap.Counters {
		switch {
		case strings.HasSuffix(name, "guard/actions/shed"):
			arm.GuardSheds += int(v)
		case strings.HasSuffix(name, "guard/actions/reroute"):
			arm.GuardReroutes += int(v)
		case strings.HasSuffix(name, "guard/actions/renegotiate"):
			arm.GuardRenegs += int(v)
		case strings.HasSuffix(name, "guard/false_positives"):
			arm.FalsePositives += int(v)
		case strings.HasSuffix(name, "degrade/steps"):
			arm.DegradeSteps += int(v)
		}
	}
	return arm, nil
}
