// The distribution-tree scenario: one source VC spliced across a relay
// onto N leaf VCs (ROADMAP item 1). It exists so cmd/benchtab can print
// the relay-path counters — relay/<id>/spliced (once per OSDU, however
// wide the fan-out), replayed, reparents — alongside the sharded core's
// shard/handoff_drops, proving no OSDU is counted twice per hop across
// the splice re-publication.
package lab

import (
	"fmt"
	"sync/atomic"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/qos"
	"cmtos/internal/relay"
	"cmtos/internal/transport"
)

// RelayFanoutResult is one run of the source → relay → leaves tree.
type RelayFanoutResult struct {
	Fanout       int           // egress count at the relay
	Spliced      uint64        // OSDUs the splice accepted (once each)
	Replayed     uint64        // OSDUs replayed out-of-band to joining leaves
	Reparents    uint64        // leaves adopted from a failed parent (0 in the clean run)
	MinDelivered uint64        // slowest leaf's delivery count
	HandoffDrops uint64        // shard/handoff_drops summed over every host
	Elapsed      time.Duration // first write to last leaf delivery
}

// RelayFanoutOnce builds a 1 → relay → leaves distribution tree on the
// emulated network, streams frames OSDUs through the splice, and waits
// until every leaf has delivered all of them. The source's uplink carries
// exactly one VC regardless of the leaf count.
func RelayFanoutOnce(leaves int, frames uint32) (RelayFanoutResult, error) {
	const (
		ingestTSAP = core.TSAP(0x300)
		egressTSAP = core.TSAP(0x301)
		leafTSAP   = core.TSAP(0x302)
		rate       = 500.0
		size       = 512
	)
	env, err := NewEnv(EnvConfig{Hosts: 2 + leaves, Link: DefaultLink(), Trans: transport.Config{RingSlots: 64}})
	if err != nil {
		return RelayFanoutResult{}, err
	}
	defer env.Close()

	counts := make([]*atomic.Uint64, leaves)
	for i := 0; i < leaves; i++ {
		counts[i] = &atomic.Uint64{}
		n := counts[i]
		if err := env.Ents[core.HostID(3+i)].Attach(leafTSAP, transport.UserCallbacks{
			OnRecvReady: func(rv *transport.RecvVC) {
				go func() {
					for {
						if _, err := rv.Read(); err != nil {
							return
						}
						n.Add(1)
					}
				}()
			},
		}); err != nil {
			return RelayFanoutResult{}, err
		}
	}

	node := relay.NewNode(env.Ents[2], relay.Config{Stats: env.Stats})
	if err := node.Listen(ingestTSAP); err != nil {
		return RelayFanoutResult{}, err
	}
	send, err := env.Ents[1].Connect(transport.ConnectRequest{
		SrcTSAP: core.TSAP(0x303), Dest: core.Addr{Host: 2, TSAP: ingestTSAP},
		Class: qos.ClassDetectIndicate,
		Spec:  CMSpec(rate, size),
	})
	if err != nil {
		return RelayFanoutResult{}, err
	}

	var sp *relay.Splice
	for until := env.Clk.Now().Add(5 * time.Second); ; {
		var ok bool
		if sp, ok = node.Splice(send.ID()); ok {
			break
		}
		if !env.Clk.Now().Before(until) {
			return RelayFanoutResult{}, fmt.Errorf("lab: splice never formed")
		}
		env.Clk.Sleep(time.Millisecond)
	}
	for i := 0; i < leaves; i++ {
		if _, err := sp.AddSink(egressTSAP, core.Addr{Host: core.HostID(3 + i), TSAP: leafTSAP}); err != nil {
			return RelayFanoutResult{}, err
		}
	}

	start := env.Clk.Now()
	payload := make([]byte, size-16)
	for seq := uint32(0); seq < frames; seq++ {
		if _, err := send.Write(payload, 0); err != nil {
			return RelayFanoutResult{}, err
		}
	}
	deadline := env.Clk.Now().Add(30 * time.Second)
	for {
		min := counts[0].Load()
		for _, c := range counts[1:] {
			if v := c.Load(); v < min {
				min = v
			}
		}
		if min >= uint64(frames) {
			break
		}
		if !env.Clk.Now().Before(deadline) {
			return RelayFanoutResult{}, fmt.Errorf("lab: tree stalled at %d/%d delivered", min, frames)
		}
		env.Clk.Sleep(2 * time.Millisecond)
	}
	elapsed := env.Clk.Now().Sub(start)

	rep := sp.LastReport()
	res := RelayFanoutResult{
		Fanout:       rep.Fanout,
		Spliced:      rep.Spliced,
		Replayed:     rep.Replayed,
		Reparents:    env.Stats.Counter(fmt.Sprintf("relay/%d/reparents", uint32(send.ID()))).Value(),
		MinDelivered: uint64(frames),
		Elapsed:      elapsed,
	}
	for id := core.HostID(1); id <= core.HostID(2+leaves); id++ {
		res.HandoffDrops += env.Stats.Counter(fmt.Sprintf("host/%d/shard/handoff_drops", uint32(id))).Value()
	}
	return res, nil
}
