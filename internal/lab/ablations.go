package lab

import (
	"math/rand"
	"strings"
	"sync"
	"time"

	"cmtos/internal/cbuf"
	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
)

// ---------------------------------------------------------------------------
// T6 / F6: regulation — the Fig. 6 feedback loop in steady state.

// RegulateResult summarises a regulated play-out.
type RegulateResult struct {
	Intervals    int           // regulate indications received
	MeanAbsLag   float64       // mean |target - delivered| in OSDUs
	TailAbsLag   float64       // mean |lag| over the final third (steady state)
	MaxAbsLag    int           // worst interval
	Dropped      int           // source drops (max-drop budget spent)
	ReportLoss   int           // intervals whose reports never paired
	LoopDuration time.Duration // wall time of the run
}

// RegulateOnce runs one orchestrated stream for the given number of
// intervals and reports how tightly delivery tracked the targets.
func RegulateOnce(intervals int, interval time.Duration) (RegulateResult, error) {
	env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink()})
	if err != nil {
		return RegulateResult{}, err
	}
	defer env.Close()
	const rate = 200.0
	p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(rate*1.5, 512))
	if err != nil {
		return RegulateResult{}, err
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { _ = media.PumpUnpaced(&media.CBR{Size: 128, FrameRate: rate}, p.Send, stop) }()
	go func() {
		for {
			if _, err := p.Recv.Read(); err != nil {
				return
			}
		}
	}()
	var mu sync.Mutex
	var res RegulateResult
	var absSum int
	var lags []int
	agent, err := env.Agent(2, 1, []hlo.StreamConfig{
		{Desc: p.Desc, Rate: rate, MaxDrop: 5},
	}, hlo.Policy{Interval: interval})
	if err != nil {
		return RegulateResult{}, err
	}
	env.LLOs[2].SetRegulateHandler(func(r orch.Report) {
		mu.Lock()
		defer mu.Unlock()
		res.Intervals++
		lag := int(int64(r.Target) - int64(r.Delivered))
		if lag < 0 {
			lag = -lag
		}
		absSum += lag
		lags = append(lags, lag)
		if lag > res.MaxAbsLag {
			res.MaxAbsLag = lag
		}
		res.Dropped += r.Dropped
		if !r.Complete {
			res.ReportLoss++
		}
	})
	if err := agent.Setup(); err != nil {
		return RegulateResult{}, err
	}
	start := env.Clk.Now()
	if err := agent.Start(); err != nil {
		return RegulateResult{}, err
	}
	env.Clk.Sleep(time.Duration(intervals) * interval)
	agent.Release()
	res.LoopDuration = env.Clk.Since(start)
	mu.Lock()
	defer mu.Unlock()
	if res.Intervals > 0 {
		res.MeanAbsLag = float64(absSum) / float64(res.Intervals)
	}
	// The per-report Dropped sums miss intervals whose source half was
	// lost; the registry's send-side drop counters are authoritative.
	snap := env.Stats.Snapshot()
	regDropped := 0
	for name, v := range snap.Counters {
		if strings.HasSuffix(name, "/send/osdus_dropped") {
			regDropped += int(v)
		}
	}
	if regDropped > res.Dropped {
		res.Dropped = regDropped
	}
	if tail := len(lags) / 3; tail > 0 {
		sum := 0
		for _, l := range lags[len(lags)-tail:] {
			sum += l
		}
		res.TailAbsLag = float64(sum) / float64(tail)
	} else {
		res.TailAbsLag = res.MeanAbsLag
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// A4: drift bounding under skewed clocks.

// DriftResult compares regulated and unregulated inter-stream skew.
type DriftResult struct {
	Duration        time.Duration
	UnregulatedSkew time.Duration // final |progress| difference, free-running
	RegulatedSkew   time.Duration // same sources under the HLO agent
}

// DriftOnce runs two equal-rate streams whose source clocks diverge by
// ±skew (e.g. 0.02 = ±2%), with and without orchestration, for dur.
func DriftOnce(dur time.Duration, skew float64) (DriftResult, error) {
	const rate = 200.0
	sys := clock.System{}
	run := func(regulated bool) (time.Duration, error) {
		fast := clock.NewSkewed(sys, 1+skew, 0)
		slow := clock.NewSkewed(sys, 1-skew, 0)
		env, err := NewEnv(EnvConfig{
			Hosts: 3, Link: DefaultLink(), Clock: sys,
			Clocks: map[core.HostID]clock.Clock{1: fast, 2: slow},
		})
		if err != nil {
			return 0, err
		}
		defer env.Close()
		a, err := env.Connect(1, 3, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(rate*1.5, 256))
		if err != nil {
			return 0, err
		}
		b, err := env.Connect(2, 3, 1, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(rate*1.5, 256))
		if err != nil {
			return 0, err
		}
		sinkA, sinkB := media.NewSink(), media.NewSink()
		stop := make(chan struct{})
		defer close(stop)
		go func() { _ = media.Pump(fast, &media.CBR{Size: 128, FrameRate: rate}, a.Send, stop) }()
		go func() { _ = media.Pump(slow, &media.CBR{Size: 128, FrameRate: rate}, b.Send, stop) }()
		go media.Drain(sys, a.Recv, sinkA, stop)
		go media.Drain(sys, b.Recv, sinkB, stop)

		if regulated {
			agent, err := env.Agent(3, 1, []hlo.StreamConfig{
				{Desc: a.Desc, Rate: rate, MaxDrop: 5},
				{Desc: b.Desc, Rate: rate, MaxDrop: 5},
			}, hlo.Policy{Interval: 100 * time.Millisecond})
			if err != nil {
				return 0, err
			}
			if err := agent.Setup(); err != nil {
				return 0, err
			}
			if err := agent.Prime(false); err != nil {
				return 0, err
			}
			if err := agent.Start(); err != nil {
				return 0, err
			}
			defer agent.Release()
		}
		pair := &media.SyncPair{A: sinkA, B: sinkB, RateA: rate, RateB: rate}
		end := sys.Now().Add(dur)
		for sys.Now().Before(end) {
			sys.Sleep(100 * time.Millisecond)
			pair.Sample()
		}
		return pair.MaxSkew(), nil
	}
	unreg, err := run(false)
	if err != nil {
		return DriftResult{}, err
	}
	reg, err := run(true)
	if err != nil {
		return DriftResult{}, err
	}
	return DriftResult{Duration: dur, UnregulatedSkew: unreg, RegulatedSkew: reg}, nil
}

// ---------------------------------------------------------------------------
// A1: rate-based vs window-based flow control for CM (§7).

// FlowControlResult compares delivery quality under the two disciplines.
type FlowControlResult struct {
	RateJitter    time.Duration // inter-arrival stddev, cm-rate profile
	WindowJitter  time.Duration // inter-arrival stddev, window profile
	RatePaceErr   float64       // |mean inter-arrival - period| / period
	WindowPaceErr float64
	RateEarly     int // frames >1 period ahead of the isochronous schedule
	WindowEarly   int
	RateLate      int // frames >1 period behind schedule
	WindowLate    int
}

// RateVsWindowOnce plays the same stored track over both profiles with an
// UNPACED source application (reading from store as fast as it can), so
// the transport's flow-control discipline is the pacing element — the
// configuration the paper argues about: rate-based smooths delivery to
// the contract rate, while window credit returns in ack-sized clumps and
// delivery turns bursty.
func RateVsWindowOnce(frames uint32) (FlowControlResult, error) {
	const rate = 100.0
	run := func(profile qos.Profile) (media.SinkStats, error) {
		link := DefaultLink()
		link.Loss = bernoulli5{}
		link.Seed = 77
		env, err := NewEnv(EnvConfig{Hosts: 2, Link: link})
		if err != nil {
			return media.SinkStats{}, err
		}
		defer env.Close()
		spec := CMSpec(rate, 512)
		spec.Throughput.Preferred = rate // pin the contract at the media rate
		p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, profile, spec)
		if err != nil {
			return media.SinkStats{}, err
		}
		src := &media.CBR{Size: 256, FrameRate: rate, Count: frames}
		sink := media.NewSink()
		sink.NominalRate = rate
		stop := make(chan struct{})
		go func() { _ = media.PumpUnpaced(src, p.Send, stop) }()
		go media.Drain(env.Clk, p.Recv, sink, stop)
		until := env.Clk.Now().Add(30 * time.Second)
		for sink.Received() < int(frames)*9/10 && env.Clk.Now().Before(until) {
			env.Clk.Sleep(2 * time.Millisecond)
		}
		close(stop)
		return sink.Stats(), nil
	}
	rateStats, err := run(qos.ProfileCMRate)
	if err != nil {
		return FlowControlResult{}, err
	}
	windowStats, err := run(qos.ProfileWindow)
	if err != nil {
		return FlowControlResult{}, err
	}
	return FlowControlResult{
		RateJitter:    rateStats.JitterStdDev,
		WindowJitter:  windowStats.JitterStdDev,
		RatePaceErr:   rateStats.PaceError,
		WindowPaceErr: windowStats.PaceError,
		RateEarly:     rateStats.EarlyFrames,
		WindowEarly:   windowStats.EarlyFrames,
		RateLate:      rateStats.LateFrames,
		WindowLate:    windowStats.LateFrames,
	}, nil
}

// bernoulli5 is a 5% loss model invisible to admission control.
type bernoulli5 struct{}

// Drop implements netem.LossModel.
func (bernoulli5) Drop(r *rand.Rand) bool { return r.Float64() < 0.05 }

// ---------------------------------------------------------------------------
// A2: multiplexing onto one VC vs separate orchestrated VCs (§3.6).

// MuxResult compares the two structures for an audio+video pair.
type MuxResult struct {
	// MuxAudioJitter is the audio chunks' inter-arrival stddev when
	// audio and video share one VC sized for the video frames.
	MuxAudioJitter time.Duration
	// SeparateAudioJitter is the same measure on its own orchestrated VC.
	SeparateAudioJitter time.Duration
	// MuxBandwidth and SeparateBandwidth are the reserved byte rates —
	// the "combined QoS sufficient for the most demanding medium" cost.
	MuxBandwidth      float64
	SeparateBandwidth float64
}

// MuxVsSeparateOnce interleaves 25fps×8KB video with 250/s×64B audio on
// one VC (every OSDU paying the video-sized reservation), then runs them
// on separate VCs, and compares the audio's delivery regularity and the
// reserved bandwidth.
func MuxVsSeparateOnce(durFrames int) (MuxResult, error) {
	const (
		videoRate = 25.0
		audioRate = 250.0
		videoSize = 4096
		audioSize = 64
	)
	res := MuxResult{}

	// --- multiplexed: one VC at the combined rate, video-sized OSDUs.
	{
		env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink()})
		if err != nil {
			return res, err
		}
		muxRate := videoRate + audioRate
		p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate,
			CMSpec(muxRate, videoSize))
		if err != nil {
			env.Close()
			return res, err
		}
		res.MuxBandwidth = muxRate * float64(videoSize+32)
		audioSink := media.NewSink()
		stop := make(chan struct{})
		sys := env.Clk
		// Interleave: every 10th OSDU is a video frame; the rest audio.
		go func() {
			start := sys.Now()
			var vSeq, aSeq uint32
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				due := start.Add(time.Duration(float64(i) / muxRate * float64(time.Second)))
				if d := due.Sub(sys.Now()); d > 0 {
					sys.Sleep(d)
				}
				var f media.Frame
				if i%11 == 0 {
					f = media.Frame{Seq: vSeq, Data: make([]byte, videoSize-16)}
					vSeq++
				} else {
					f = media.Frame{Seq: aSeq, Event: 1, Data: make([]byte, audioSize)}
					aSeq++
				}
				if _, err := p.Send.Write(f.Marshal(), f.Event); err != nil {
					return
				}
			}
		}()
		go func() {
			for {
				u, err := p.Recv.Read()
				if err != nil {
					return
				}
				f, err := media.UnmarshalFrame(u.Payload)
				if err != nil {
					continue
				}
				if u.Event == 1 { // audio share of the mux
					audioSink.Consume(f, sys.Now())
				}
			}
		}()
		for audioSink.Received() < durFrames {
			sys.Sleep(5 * time.Millisecond)
		}
		close(stop)
		res.MuxAudioJitter = audioSink.Stats().JitterStdDev
		env.Close()
	}

	// --- separate: two right-sized VCs, orchestrated.
	{
		env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink()})
		if err != nil {
			return res, err
		}
		defer env.Close()
		v, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(videoRate, videoSize))
		if err != nil {
			return res, err
		}
		a, err := env.Connect(1, 2, 1, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(audioRate, audioSize+32))
		if err != nil {
			return res, err
		}
		res.SeparateBandwidth = videoRate*float64(videoSize+32) + audioRate*float64(audioSize+32+32)
		sys := env.Clk
		audioSink := media.NewSink()
		videoSink := media.NewSink()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			_ = media.Pump(sys, &media.CBR{Size: videoSize - 16, FrameRate: videoRate}, v.Send, stop)
		}()
		go func() {
			_ = media.Pump(sys, &media.CBR{Size: audioSize, FrameRate: audioRate}, a.Send, stop)
		}()
		go media.Drain(sys, v.Recv, videoSink, stop)
		go media.Drain(sys, a.Recv, audioSink, stop)
		agent, err := env.Agent(2, 1, []hlo.StreamConfig{
			{Desc: v.Desc, Rate: videoRate, MaxDrop: 2},
			{Desc: a.Desc, Rate: audioRate, MaxDrop: 5},
		}, hlo.Policy{Interval: 100 * time.Millisecond})
		if err != nil {
			return res, err
		}
		if err := agent.Setup(); err != nil {
			return res, err
		}
		if err := agent.Start(); err != nil {
			return res, err
		}
		defer agent.Release()
		for audioSink.Received() < durFrames {
			sys.Sleep(5 * time.Millisecond)
		}
		res.SeparateAudioJitter = audioSink.Stats().JitterStdDev
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// A3: shared circular buffer vs copy-based data transfer interface (§3.7).

// BufVsCopyResult compares per-OSDU transfer cost.
type BufVsCopyResult struct {
	SharedNsPerOSDU float64
	CopyNsPerOSDU   float64
}

// SharedBufVsCopyOnce moves count OSDUs of size bytes producer→consumer
// through (a) the §3.7 shared circular buffer and (b) a conventional
// send()-style interface that allocates and copies per call (the
// channel-of-slices baseline).
func SharedBufVsCopyOnce(count, size int) BufVsCopyResult {
	sys := clock.System{}
	payload := make([]byte, size)

	// (a) shared ring.
	ring := cbuf.New(sys, 16, size)
	start := sys.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < count; i++ {
			if _, err := ring.Get(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		_ = ring.Put(cbuf.OSDU{Seq: core.OSDUSeq(i), Payload: payload})
	}
	<-done
	shared := sys.Since(start)

	// (b) copy-based: each send allocates a fresh buffer and copies —
	// the sendo/recvo "data location + data transfer per call" cost
	// ([Govindan,91] via §3.7).
	ch := make(chan []byte, 16)
	start = sys.Now()
	done = make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < count; i++ {
			buf := <-ch
			sink := make([]byte, len(buf)) // receiver-side copy-out
			copy(sink, buf)
			_ = sink
		}
	}()
	for i := 0; i < count; i++ {
		buf := make([]byte, size) // sender-side copy-in
		copy(buf, payload)
		ch <- buf
	}
	<-done
	copied := sys.Since(start)

	return BufVsCopyResult{
		SharedNsPerOSDU: float64(shared.Nanoseconds()) / float64(count),
		CopyNsPerOSDU:   float64(copied.Nanoseconds()) / float64(count),
	}
}
