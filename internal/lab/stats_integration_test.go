package lab

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
)

// TestRegistryPopulatedEndToEnd runs a small lip-sync-style orchestrated
// session (one audio-rate and one video-rate stream into a common sink)
// and asserts that every layer reported into the environment's registry
// under the documented metric names: netem link counters, transport
// send/recv counters, the sink's QoS gauges, and the orchestration
// report counters at the agent.
func TestRegistryPopulatedEndToEnd(t *testing.T) {
	env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink()})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	audio, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(250, 256))
	if err != nil {
		t.Fatal(err)
	}
	video, err := env.Connect(1, 2, 1, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(25, 2048))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	defer close(stop)
	for _, p := range []*Pipe{audio, video} {
		p := p
		go func() {
			payload := make([]byte, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := p.Send.Write(payload, 0); err != nil {
					return
				}
			}
		}()
		go func() {
			for {
				if _, err := p.Recv.Read(); err != nil {
					return
				}
			}
		}()
	}

	agent, err := env.Agent(2, 1, []hlo.StreamConfig{
		{Desc: audio.Desc, Rate: 250, MaxDrop: 5},
		{Desc: video.Desc, Rate: 25, MaxDrop: 2},
	}, hlo.Policy{Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer agent.Release()

	// Wait until the agent has consumed at least a few interval reports.
	reports := env.Stats.Counter("host/2/orch/reports")
	deadline := env.Clk.Now().Add(5 * time.Second)
	for reports.Value() < 3 && env.Clk.Now().Before(deadline) {
		env.Clk.Sleep(5 * time.Millisecond)
	}

	snap := env.Stats.Snapshot()
	counterWith := func(prefix, suffix string) (string, uint64, bool) {
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
				return name, v, true
			}
		}
		return "", 0, false
	}
	mustCount := func(prefix, suffix string) {
		t.Helper()
		name, v, ok := counterWith(prefix, suffix)
		if !ok {
			t.Fatalf("no counter %s...%s in registry:\n%s", prefix, suffix, env.Stats.String())
		}
		if v == 0 {
			t.Errorf("counter %s is zero", name)
		}
	}

	// Network layer: the 1-2 link carried packets both ways.
	mustCount("link/", "/sent_packets")
	mustCount("link/", "/sent_bytes")

	// Transport layer, both VCs on the source and sink hosts.
	for _, p := range []*Pipe{audio, video} {
		vc := uint32(p.Desc.VC)
		mustCount(fmt.Sprintf("host/1/vc/%d/send", vc), "/osdus_written")
		mustCount(fmt.Sprintf("host/1/vc/%d/send", vc), "/osdus_sent")
		mustCount(fmt.Sprintf("host/2/vc/%d/recv", vc), "/osdus_delivered")
	}

	// QoS monitor gauges published by the sink's sample loop.
	foundGauge := false
	for name := range snap.Gauges {
		if strings.HasSuffix(name, "/recv/qos/throughput") {
			foundGauge = true
			break
		}
	}
	if !foundGauge {
		t.Errorf("no recv/qos/throughput gauge in registry:\n%s", env.Stats.String())
	}

	// Orchestration layer: regulation ran at both participants and the
	// agent paired interval reports.
	if v := reports.Value(); v < 3 {
		t.Errorf("host/2/orch/reports = %d, want >= 3\n%s", v, env.Stats.String())
	}
	for _, host := range []core.HostID{1, 2} {
		mustCount(fmt.Sprintf("host/%d/orch", host), "/regulates")
	}
	if _, _, ok := counterWith("host/2/orch", "/reports"); !ok {
		t.Errorf("agent reports counter missing from snapshot")
	}
}
