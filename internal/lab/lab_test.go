package lab

import (
	"testing"
	"time"

	"cmtos/internal/qos"
)

func TestEnvBuildAndConnect(t *testing.T) {
	env, err := NewEnv(EnvConfig{Hosts: 3, Link: DefaultLink()})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	p, err := env.Connect(1, 3, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(100, 512))
	if err != nil {
		t.Fatal(err)
	}
	sink := env.Play(p, 100, 128, 30, 5*time.Second)
	st := sink.Stats()
	if st.Received < 30 {
		t.Fatalf("received %d/30", st.Received)
	}
	if st.Corrupt != 0 {
		t.Fatalf("corrupt frames: %d", st.Corrupt)
	}
}

func TestConnectOnceShape(t *testing.T) {
	res, err := ConnectOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Local <= 0 || res.Remote <= 0 {
		t.Fatalf("latencies: %+v", res)
	}
	// A remote connect adds the initiator→source relay leg.
	if res.Remote < res.Local/2 {
		t.Fatalf("remote (%v) implausibly faster than local (%v)", res.Remote, res.Local)
	}
}

func TestQoSIndicationOnceShape(t *testing.T) {
	res, err := QoSIndicationOnce()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReportedPER < 0.05 {
		t.Fatalf("reported PER %.3f, injected 0.20", res.ReportedPER)
	}
	if res.DetectLatency > 5*time.Second {
		t.Fatalf("detection took %v", res.DetectLatency)
	}
}

func TestRenegotiateOnceShape(t *testing.T) {
	res, err := RenegotiateOnce()
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgraded != 150 {
		t.Fatalf("upgraded to %g, want 150", res.Upgraded)
	}
	if !res.RejectedIntact {
		t.Fatal("VC died after rejected renegotiation")
	}
}

func TestOrchSessionOnceShape(t *testing.T) {
	lat, err := OrchSessionOnce(4)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || lat > 5*time.Second {
		t.Fatalf("setup latency %v", lat)
	}
}

func TestStartSkewOnceShape(t *testing.T) {
	res, err := StartSkewOnce(3)
	if err != nil {
		t.Fatal(err)
	}
	// The headline: priming makes the start effectively simultaneous
	// while unprimed starts spread over the operator stagger + delays.
	if res.PrimedSkew >= res.UnprimedSkew {
		t.Fatalf("primed skew %v !< unprimed %v", res.PrimedSkew, res.UnprimedSkew)
	}
	if res.PrimedSkew > 50*time.Millisecond {
		t.Fatalf("primed skew %v too large", res.PrimedSkew)
	}
}

func TestRegulateOnceShape(t *testing.T) {
	res, err := RegulateOnce(10, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals < 5 {
		t.Fatalf("only %d indications", res.Intervals)
	}
	// Steady-state tracking: transient scheduler contention (this test
	// shares the machine with the rest of the suite) may inflate early
	// intervals, but the absolute schedule must reconverge.
	if res.TailAbsLag > 30 {
		t.Fatalf("steady-state |lag| %.1f OSDUs at a 20/interval schedule (mean %.1f)",
			res.TailAbsLag, res.MeanAbsLag)
	}
}

func TestRateVsWindowOnceShape(t *testing.T) {
	res, err := RateVsWindowOnce(200)
	if err != nil {
		t.Fatal(err)
	}
	// Rate-based pacing is isochronous; window delivery runs at
	// ack-clocked line speed, far from the media rate.
	if res.RatePaceErr > 0.2 {
		t.Fatalf("rate-based pace error %.2f", res.RatePaceErr)
	}
	if res.WindowPaceErr < res.RatePaceErr {
		t.Fatalf("window pace error %.2f !> rate %.2f", res.WindowPaceErr, res.RatePaceErr)
	}
	if res.WindowEarly <= res.RateEarly {
		t.Fatalf("window early frames %d !> rate %d", res.WindowEarly, res.RateEarly)
	}
}

func TestMuxVsSeparateOnceShape(t *testing.T) {
	res, err := MuxVsSeparateOnce(150)
	if err != nil {
		t.Fatal(err)
	}
	// Separate right-sized VCs reserve far less than a mux sized for the
	// most demanding medium (§3.6's third argument).
	if res.SeparateBandwidth >= res.MuxBandwidth {
		t.Fatalf("separate %.0f !< mux %.0f B/s", res.SeparateBandwidth, res.MuxBandwidth)
	}
}

func TestSharedBufVsCopyOnceShape(t *testing.T) {
	res := SharedBufVsCopyOnce(5000, 4096)
	if res.SharedNsPerOSDU <= 0 || res.CopyNsPerOSDU <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// The copy-based interface pays allocation + double copy per OSDU.
	if res.CopyNsPerOSDU < res.SharedNsPerOSDU {
		t.Fatalf("copy (%f) !> shared (%f) ns/OSDU", res.CopyNsPerOSDU, res.SharedNsPerOSDU)
	}
}

func TestDriftOnceShape(t *testing.T) {
	res, err := DriftOnce(2*time.Second, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegulatedSkew >= res.UnregulatedSkew {
		t.Fatalf("regulated skew %v !< unregulated %v", res.RegulatedSkew, res.UnregulatedSkew)
	}
}
