package lab

import (
	"fmt"
	"math/rand"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/stats"
	"cmtos/internal/transport"
)

// ---------------------------------------------------------------------------
// T1: Table 1 — connection establishment and release.

// ConnectResult reports establishment latencies.
type ConnectResult struct {
	Local  time.Duration // conventional connect (initiator == source)
	Remote time.Duration // three-address remote connect (Fig. 3)
}

// ConnectOnce measures one local and one remote establishment on a fresh
// three-host environment.
func ConnectOnce(idx int) (ConnectResult, error) {
	env, err := NewEnv(EnvConfig{Hosts: 3, Link: DefaultLink()})
	if err != nil {
		return ConnectResult{}, err
	}
	defer env.Close()
	spec := CMSpec(100, 1024)

	start := env.Clk.Now()
	p, err := env.Connect(1, 2, idx, qos.ClassDetectIndicate, qos.ProfileCMRate, spec)
	if err != nil {
		return ConnectResult{}, err
	}
	local := env.Clk.Since(start)
	_ = p.Send.Close(core.ReasonUserInitiated)

	// Remote connect: initiator h3, source h1, sink h2.
	ready := make(chan struct{}, 1)
	if err := env.Ents[1].Attach(0x3000, transport.UserCallbacks{
		OnSendReady: func(*transport.SendVC) { ready <- struct{}{} },
	}); err != nil {
		return ConnectResult{}, err
	}
	if err := env.Ents[2].Attach(0x3001, transport.UserCallbacks{}); err != nil {
		return ConnectResult{}, err
	}
	tup := core.ConnectTuple{
		Initiator: core.Addr{Host: 3, TSAP: 0x3002},
		Source:    core.Addr{Host: 1, TSAP: 0x3000},
		Dest:      core.Addr{Host: 2, TSAP: 0x3001},
	}
	start = env.Clk.Now()
	if _, _, err := env.Ents[3].ConnectRemote(tup, qos.ProfileCMRate, qos.ClassDetectIndicate, spec); err != nil {
		return ConnectResult{}, err
	}
	remote := env.Clk.Since(start)
	return ConnectResult{Local: local, Remote: remote}, nil
}

// ---------------------------------------------------------------------------
// T2: Table 2 — QoS degradation indication.

// QoSIndicationResult reports how the soft guarantee surfaced a fault.
type QoSIndicationResult struct {
	// DetectLatency is fault injection → T-QoS.indication at the source.
	DetectLatency time.Duration
	// ReportedPER is the measured packet error rate in the indication.
	ReportedPER float64
}

// QoSIndicationOnce connects a soft-guaranteed VC over a link that turns
// out lossy in service, and measures the time until the transport raises
// T-QoS.indication with a PER violation at the source user.
func QoSIndicationOnce() (QoSIndicationResult, error) {
	link := DefaultLink()
	link.Loss = bernoulli20{}
	env, err := NewEnv(EnvConfig{
		Hosts: 2, Link: link,
		Trans: transport.Config{SamplePeriod: 100 * time.Millisecond},
	})
	if err != nil {
		return QoSIndicationResult{}, err
	}
	defer env.Close()

	got := make(chan transport.QoSIndication, 16)
	if err := env.Ents[1].Attach(0x2000, transport.UserCallbacks{
		OnQoS: func(q transport.QoSIndication) {
			select {
			case got <- q:
			default:
			}
		},
	}); err != nil {
		return QoSIndicationResult{}, err
	}
	spec := CMSpec(200, 256)
	spec.PER = qos.CeilTolerance{Preferred: 0, Acceptable: 0.02}
	p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, spec)
	if err != nil {
		return QoSIndicationResult{}, err
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { _ = media.PumpUnpaced(&media.CBR{Size: 128, FrameRate: 200}, p.Send, stop) }()
	go func() {
		for {
			if _, err := p.Recv.Read(); err != nil {
				return
			}
		}
	}()
	start := env.Clk.Now()
	deadline := env.Clk.After(10 * time.Second)
	for {
		select {
		case ind := <-got:
			for _, v := range ind.Violated {
				if v == qos.PER {
					return QoSIndicationResult{
						DetectLatency: env.Clk.Since(start),
						ReportedPER:   ind.Report.PER,
					}, nil
				}
			}
		case <-deadline:
			return QoSIndicationResult{}, fmt.Errorf("lab: no PER indication")
		}
	}
}

// bernoulli20 is a 20% loss model that admission control cannot foresee
// (PathCapability only recognises the stock loss types), so the soft
// guarantee admits the connection and then degrades in service.
type bernoulli20 struct{}

// Drop implements netem.LossModel.
func (bernoulli20) Drop(r *rand.Rand) bool { return r.Float64() < 0.20 }

// ---------------------------------------------------------------------------
// T3: Table 3 — QoS re-negotiation.

// RenegResult reports re-negotiation behaviour.
type RenegResult struct {
	UpgradeLatency time.Duration
	Upgraded       float64 // throughput after upgrade
	RejectedIntact bool    // VC alive after a rejected renegotiation
}

// RenegotiateOnce upgrades a VC mid-stream, then drives a rejected
// renegotiation and verifies the VC survives (§4.1.3).
func RenegotiateOnce() (RenegResult, error) {
	env, err := NewEnv(EnvConfig{Hosts: 2, Link: DefaultLink()})
	if err != nil {
		return RenegResult{}, err
	}
	defer env.Close()
	spec := CMSpec(50, 1024)
	p, err := env.Connect(1, 2, 0, qos.ClassDetectIndicate, qos.ProfileCMRate, spec)
	if err != nil {
		return RenegResult{}, err
	}
	up := CMSpec(150, 1024)
	start := env.Clk.Now()
	final, err := p.Send.Renegotiate(up)
	if err != nil {
		return RenegResult{}, err
	}
	lat := env.Clk.Since(start)

	// Now an impossible upgrade: beyond the link's capacity.
	impossible := CMSpec(1e6, 1024)
	impossible.Throughput.Acceptable = 9e5
	_, err = p.Send.Renegotiate(impossible)
	intact := false
	if err != nil {
		// The VC must still carry data.
		if _, werr := p.Send.Write([]byte("alive"), 0); werr == nil {
			if u, rerr := p.Recv.Read(); rerr == nil && string(u.Payload) == "alive" {
				intact = true
			}
		}
	}
	return RenegResult{UpgradeLatency: lat, Upgraded: final.Throughput, RejectedIntact: intact}, nil
}

// ---------------------------------------------------------------------------
// T4: Table 4 — orchestration session establishment and release.

// OrchSessionOnce measures Orch.request over n VCs.
func OrchSessionOnce(n int) (time.Duration, error) {
	env, err := NewEnv(EnvConfig{Hosts: 3, Link: DefaultLink()})
	if err != nil {
		return 0, err
	}
	defer env.Close()
	streams := make([]hlo.StreamConfig, 0, n)
	for i := 0; i < n; i++ {
		src := core.HostID(1 + i%2)
		p, err := env.Connect(src, 3, i, qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(50, 512))
		if err != nil {
			return 0, err
		}
		streams = append(streams, hlo.StreamConfig{Desc: p.Desc, Rate: 50})
	}
	agent, err := env.Agent(3, 1, streams, hlo.Policy{})
	if err != nil {
		return 0, err
	}
	start := env.Clk.Now()
	if err := agent.Setup(); err != nil {
		return 0, err
	}
	lat := env.Clk.Since(start)
	agent.Release()
	return lat, nil
}

// ---------------------------------------------------------------------------
// T5 / F7: Table 5 — group control; the primed-start experiment.

// StartSkewResult compares primed and unprimed group starts.
type StartSkewResult struct {
	PrimedSkew   time.Duration // first-delivery spread after Prime+Start
	UnprimedSkew time.Duration // spread when streams start independently
	PrimeLatency time.Duration // Orch.Prime round trip (pipeline fill)
}

// StartSkewOnce runs both variants over nStreams from distinct servers to
// one sink. The asymmetric link delays make the unprimed spread visible.
func StartSkewOnce(nStreams int) (StartSkewResult, error) {
	if nStreams < 2 {
		nStreams = 2
	}
	// Build hosts: servers 1..n, sink n+1, with increasing link delay.
	res := StartSkewResult{}
	build := func() (*Env, []*Pipe, []*media.Sink, error) {
		env, err := NewEnvAsymmetric(nStreams, 15*time.Millisecond)
		if err != nil {
			return nil, nil, nil, err
		}
		pipes := make([]*Pipe, nStreams)
		sinks := make([]*media.Sink, nStreams)
		sinkHost := core.HostID(nStreams + 1)
		for i := 0; i < nStreams; i++ {
			p, err := env.Connect(core.HostID(i+1), sinkHost, i,
				qos.ClassDetectIndicate, qos.ProfileCMRate, CMSpec(100, 512))
			if err != nil {
				env.Close()
				return nil, nil, nil, err
			}
			pipes[i] = p
			sinks[i] = media.NewSink()
		}
		return env, pipes, sinks, nil
	}
	spread := func(sinks []*media.Sink) time.Duration {
		var lo, hi time.Time
		for i, s := range sinks {
			st := s.Stats()
			if i == 0 || st.First.Before(lo) {
				lo = st.First
			}
			if i == 0 || st.First.After(hi) {
				hi = st.First
			}
		}
		return hi.Sub(lo)
	}

	// Unprimed: sources start pumping one after another, delivery flows
	// immediately.
	env, pipes, sinks, err := build()
	if err != nil {
		return res, err
	}
	stop := make(chan struct{})
	clk := env.Clk
	for i := range pipes {
		go media.Drain(clk, pipes[i].Recv, sinks[i], stop)
		go func(i int) {
			_ = media.Pump(clk, &media.CBR{Size: 256, FrameRate: 100}, pipes[i].Send, stop)
		}(i)
		clk.Sleep(10 * time.Millisecond) // staggered operator actions
	}
	clk.Sleep(300 * time.Millisecond)
	res.UnprimedSkew = spread(sinks)
	close(stop)
	env.Close()

	// Primed: the paper's flow — Orch.Prime goes out FIRST; the
	// Orch.Prime.indication is what tells each source application to
	// start generating (§6.2.1), so no data reaches an open gate.
	env, pipes, sinks, err = build()
	if err != nil {
		return res, err
	}
	defer env.Close()
	stop = make(chan struct{})
	defer close(stop)
	clk = env.Clk
	sinkHost := core.HostID(nStreams + 1)
	streams := make([]hlo.StreamConfig, nStreams)
	for i := range pipes {
		streams[i] = hlo.StreamConfig{Desc: pipes[i].Desc, Rate: 100}
	}
	// Source apps begin pumping when their Orch.Prime.indication fires.
	for i := range pipes {
		i := i
		env.LLOs[core.HostID(i+1)].RegisterApp(pipes[i].Desc.VC, orch.AppCallbacks{
			OnPrime: func(core.SessionID, core.VCID) bool {
				go func(i int) {
					clk.Sleep(time.Duration(i) * 10 * time.Millisecond) // staggered operators
					_ = media.Pump(clk, &media.CBR{Size: 256, FrameRate: 100}, pipes[i].Send, stop)
				}(i)
				return true
			},
		})
		go media.Drain(clk, pipes[i].Recv, sinks[i], stop)
	}
	agent, err := env.Agent(sinkHost, 1, streams, hlo.Policy{Interval: 100 * time.Millisecond})
	if err != nil {
		return res, err
	}
	if err := agent.Setup(); err != nil {
		return res, err
	}
	start := clk.Now()
	if err := agent.Prime(false); err != nil {
		return res, err
	}
	res.PrimeLatency = clk.Since(start)
	if err := agent.Start(); err != nil {
		return res, err
	}
	clk.Sleep(300 * time.Millisecond)
	res.PrimedSkew = spread(sinks)
	agent.Release()
	return res, nil
}

// NewEnvAsymmetric builds servers 1..n and sink n+1, where server i's
// link to the sink has delay (i+1) × step — the asymmetry that makes
// unprimed starts ragged.
func NewEnvAsymmetric(n int, maxDelay time.Duration) (*Env, error) {
	base := clock.Clock(clock.System{})
	reg := stats.NewRegistry()
	nw := netem.New(base)
	nw.SetStats(reg.Scope(""))
	sink := core.HostID(n + 1)
	for id := core.HostID(1); id <= sink; id++ {
		if err := nw.AddHost(id, nil); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		link := DefaultLink()
		link.Delay = time.Duration(i+1) * maxDelay / time.Duration(n)
		if err := nw.AddLink(core.HostID(i+1), sink, link); err != nil {
			return nil, err
		}
	}
	if err := nw.Start(); err != nil {
		return nil, err
	}
	rm := resv.New(nw)
	env := &Env{Net: nw, RM: rm,
		Ents:  make(map[core.HostID]*transport.Entity),
		LLOs:  make(map[core.HostID]*orch.LLO),
		Clk:   base,
		Stats: reg}
	for id := core.HostID(1); id <= sink; id++ {
		e, err := transport.NewEntity(id, base, nw, rm, transport.Config{RingSlots: 16, Stats: reg})
		if err != nil {
			nw.Close()
			return nil, err
		}
		env.Ents[id] = e
		env.LLOs[id] = orch.New(e)
	}
	return env, nil
}
