package lab

import (
	"testing"
	"time"
)

// The delay-ramp regime is the predictor's headline scenario: congestion
// builds deterministically, so the trend is visible sample periods before
// the first violation. The reactive arm must pay at least DegradeAfter
// violated periods before its first ladder rung; the predictive arm acts
// on the forecast and must never do worse.
func TestPredictABDelayRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("15s wall-clock A/B")
	}
	r, err := PredictABOnce("delay-ramp", 6*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reactive:   %+v", r.Reactive)
	t.Logf("predictive: %+v", r.Predictive)
	if r.Reactive.ViolatedPeriods == 0 {
		t.Fatal("delay ramp never violated the reactive arm — the regime is too gentle to compare")
	}
	if r.Reactive.GuardRenegs+r.Reactive.GuardSheds+r.Reactive.GuardReroutes != 0 {
		t.Fatalf("reactive arm took guard actions: %+v", r.Reactive)
	}
	if r.Predictive.GuardRenegs == 0 {
		t.Fatal("predictive arm never renegotiated proactively")
	}
	if r.Predictive.ViolatedPeriods > r.Reactive.ViolatedPeriods {
		t.Fatalf("predictive arm violated more periods (%d) than reactive (%d)",
			r.Predictive.ViolatedPeriods, r.Reactive.ViolatedPeriods)
	}
}

// The other two scenarios just need to produce sane paired measurements;
// their comparative numbers are benchtab/EXPERIMENTS.md material.
func TestPredictABScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("15s wall-clock A/B")
	}
	r, err := PredictABOnce("ge-burst", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reactive:   %+v", r.Reactive)
	t.Logf("predictive: %+v", r.Predictive)
	if r.Reactive.Delivered == 0 || r.Predictive.Delivered == 0 {
		t.Fatalf("an arm delivered nothing: %+v", r)
	}
	if _, err := PredictABOnce("no-such-regime", time.Second); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
