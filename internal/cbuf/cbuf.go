// Package cbuf implements the shared circular-buffer data-transfer
// interface of §3.7: a ring of OSDU slots shared between an application
// thread and a protocol thread, with access contention controlled by
// semaphores. OSDU boundaries are preserved irrespective of byte size, an
// auxiliary slot carries the current OSDU's size, and the time each side
// spends blocked on the semaphores is measured — those statistics drive
// the orchestration service's lag attribution (§6.3.1.2).
//
// Each transport VC owns two rings: at the source the application produces
// and the protocol consumes; at the sink the protocol produces and the
// application consumes. A delivery gate lets the sink LLO fill buffers
// while withholding delivery (Orch.Prime) and release them atomically
// (Orch.Start).
package cbuf

import (
	"errors"
	"sync"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/stats"
)

// ErrClosed is returned once the ring is closed and drained.
var ErrClosed = errors.New("cbuf: ring closed")

// OSDU is one logical data unit queued in a ring, together with the OPDU
// fields that travel with it (§5).
type OSDU struct {
	// Seq is the OSDU sequence number.
	Seq core.OSDUSeq
	// Event is the application-defined event field (zero = none).
	Event core.EventPattern
	// Payload is the OSDU content. For Put the ring copies it into slot
	// storage; for Get the returned slice aliases slot storage and is
	// valid until the next Get.
	Payload []byte
}

// Stats is the pair of cumulative blocking times gathered since the last
// TakeStats call: how long producers waited for free slots and how long
// consumers waited for data (including time held by the delivery gate).
type Stats struct {
	ProducerBlocked time.Duration
	ConsumerBlocked time.Duration
}

// Ring is a bounded circular buffer of OSDU slots. It is safe for any
// number of concurrent producers and consumers, though the intended use is
// one of each (the paper's application/protocol thread pair).
type Ring struct {
	clk clock.Clock

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	slots  [][]byte // slot i's backing array, cap = maxOSDU
	sizes  []int
	seqs   []core.OSDUSeq
	events []core.EventPattern

	head, tail, count int
	gated             bool
	closed            bool
	sealed            bool
	consumed          core.OSDUSeq // one past the last OSDU handed to the consumer
	scratch           []byte       // consumer copy-out buffer; see Get

	fullChs []chan<- struct{} // NotifyFull subscribers
	dataFn  func()            // SetDataNotify hook; called after mu is released

	prodBlocked time.Duration
	consBlocked time.Duration

	// Optional registry histograms observing each blocking episode in
	// seconds; nil (the default) means disabled.
	prodHist *stats.Histogram
	consHist *stats.Histogram
}

// SetBlockStats attaches histograms that record every producer/consumer
// blocking episode (in seconds) alongside the cumulative TakeStats
// durations. Either may be nil.
func (r *Ring) SetBlockStats(producer, consumer *stats.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prodHist = producer
	r.consHist = consumer
}

// SetDataNotify installs a hook invoked after every successful Put or
// TryPut, outside the ring lock. An event-driven consumer (a transport
// shard's send pump) uses it instead of parking a goroutine in Get; the
// hook must be cheap and must tolerate spurious and coalesced calls.
func (r *Ring) SetDataNotify(fn func()) {
	r.mu.Lock()
	r.dataFn = fn
	r.mu.Unlock()
}

// New returns a ring of n slots, each able to hold OSDUs up to maxOSDU
// bytes. The slot count bound is what the paper's Orch.Prime fills; the
// maxOSDU bound comes from the MaxOSDUSize QoS parameter (§5).
func New(clk clock.Clock, n, maxOSDU int) *Ring {
	if n <= 0 || maxOSDU <= 0 {
		panic("cbuf: slot count and max OSDU size must be positive")
	}
	backing := make([]byte, n*maxOSDU)
	r := &Ring{
		clk:    clk,
		slots:  make([][]byte, n),
		sizes:  make([]int, n),
		seqs:   make([]core.OSDUSeq, n),
		events: make([]core.EventPattern, n),
	}
	for i := range r.slots {
		r.slots[i] = backing[i*maxOSDU : (i+1)*maxOSDU]
	}
	r.scratch = make([]byte, maxOSDU)
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Cap returns the slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of queued OSDUs.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Free returns the number of free slots.
func (r *Ring) Free() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots) - r.count
}

// Full reports whether every slot is occupied — the sink LLO's "buffers
// primed" condition.
func (r *Ring) Full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count == len(r.slots)
}

// Put copies u into the next free slot, blocking while the ring is full.
// The payload must not exceed the ring's max OSDU size. It returns
// ErrClosed after Close.
func (r *Ring) Put(u OSDU) error {
	r.mu.Lock()
	if len(u.Payload) > len(r.slots[0]) {
		r.mu.Unlock()
		return errors.New("cbuf: OSDU exceeds negotiated MaxOSDUSize")
	}
	if r.count == len(r.slots) && !r.closed {
		start := r.clk.Now()
		for r.count == len(r.slots) && !r.closed {
			r.notFull.Wait()
		}
		d := r.clk.Since(start)
		r.prodBlocked += d
		r.prodHist.Observe(d.Seconds())
	}
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.write(u)
	fn := r.dataFn
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// TryPut is Put without blocking; it reports whether the OSDU was queued.
func (r *Ring) TryPut(u OSDU) (bool, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false, ErrClosed
	}
	if len(u.Payload) > len(r.slots[0]) {
		r.mu.Unlock()
		return false, errors.New("cbuf: OSDU exceeds negotiated MaxOSDUSize")
	}
	if r.count == len(r.slots) {
		r.mu.Unlock()
		return false, nil
	}
	r.write(u)
	fn := r.dataFn
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true, nil
}

// write appends u; caller holds mu and has checked capacity.
func (r *Ring) write(u OSDU) {
	i := r.tail
	copy(r.slots[i], u.Payload)
	r.sizes[i] = len(u.Payload)
	r.seqs[i] = u.Seq
	r.events[i] = u.Event
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	r.notEmpty.Signal()
	if r.count == len(r.slots) {
		r.signalFull()
	}
}

// signalFull pokes every NotifyFull subscriber; caller holds mu. Sends
// never block: the channels are level triggers, not counters.
func (r *Ring) signalFull() {
	for _, ch := range r.fullChs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// NotifyFull registers ch for a non-blocking signal whenever a Put
// occupies the last free slot, and immediately when the ring is already
// full or closed. The sink LLO waits on it for the §6.2.1 "receive
// buffers are eventually full" point instead of polling.
func (r *Ring) NotifyFull(ch chan<- struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fullChs = append(r.fullChs, ch)
	if r.count == len(r.slots) || r.closed {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// StopNotifyFull removes a channel registered with NotifyFull.
func (r *Ring) StopNotifyFull(ch chan<- struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.fullChs {
		if c == ch {
			r.fullChs = append(r.fullChs[:i], r.fullChs[i+1:]...)
			return
		}
	}
}

// Get removes and returns the oldest OSDU, blocking while the ring is
// empty or the delivery gate is held. The returned payload points into a
// per-ring scratch buffer and is valid until the consumer's next Get or
// TryGet; rings support exactly one consumer. Callers that keep data
// longer must copy it.
func (r *Ring) Get() (OSDU, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if (r.count == 0 || r.gated) && !r.closed {
		start := r.clk.Now()
		for (r.count == 0 || r.gated) && !r.closed {
			r.notEmpty.Wait()
		}
		d := r.clk.Since(start)
		r.consBlocked += d
		r.consHist.Observe(d.Seconds())
	}
	if r.count == 0 {
		return OSDU{}, ErrClosed // only reachable when closed
	}
	return r.read(), nil
}

// TryGet is Get without blocking; ok reports whether an OSDU was returned.
func (r *Ring) TryGet() (u OSDU, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 || r.gated {
		if r.closed && r.count == 0 {
			return OSDU{}, false, ErrClosed
		}
		return OSDU{}, false, nil
	}
	return r.read(), true, nil
}

// read pops the head into the scratch buffer; caller holds mu and has
// checked count. Copying out lets the slot be reused by producers
// immediately while the consumer still examines the payload.
func (r *Ring) read() OSDU {
	i := r.head
	n := r.sizes[i]
	copy(r.scratch, r.slots[i][:n])
	u := OSDU{
		Seq:     r.seqs[i],
		Event:   r.events[i],
		Payload: r.scratch[:n],
	}
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	r.consumed = u.Seq + 1
	r.notFull.Signal()
	return u
}

// Consumed returns the watermark one past the last OSDU handed to the
// consumer. Because read() advances it under the ring lock, the value is
// exact: after Seal no Get can pop, so Consumed is precisely where a
// resumed stream must restart.
func (r *Ring) Consumed() core.OSDUSeq {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consumed
}

// Seal closes the ring AND discards everything still queued, returning the
// consumed watermark. Unlike Close — which lets the consumer drain queued
// OSDUs — Seal guarantees that no further OSDU will ever be handed out, so
// the returned watermark is an exact resume point for the session layer:
// every OSDU at or above it must be replayed on the successor VC, and
// nothing below it may be (§3.3 transparent re-establishment, extended to
// the failure path).
func (r *Ring) Seal() core.OSDUSeq {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.sealed = true
	r.head, r.tail, r.count = 0, 0, 0
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	r.signalFull()
	return r.consumed
}

// Sealed reports whether Seal has been called.
func (r *Ring) Sealed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealed
}

// Drain pops every OSDU still queued (ignoring the delivery gate) and
// returns them oldest-first with copied payloads — unlike Get, the results
// do not alias the scratch buffer. The session layer uses it after a
// failure teardown to recover accepted-but-untransmitted OSDUs from the
// send-side ring for replay on the successor VC.
func (r *Ring) Drain() []OSDU {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return nil
	}
	out := make([]OSDU, 0, r.count)
	for r.count > 0 {
		i := r.head
		n := r.sizes[i]
		p := make([]byte, n)
		copy(p, r.slots[i][:n])
		out = append(out, OSDU{Seq: r.seqs[i], Event: r.events[i], Payload: p})
		r.head = (r.head + 1) % len(r.slots)
		r.count--
		r.consumed = r.seqs[i] + 1
	}
	r.notFull.Broadcast()
	return out
}

// DropNewest discards the most recently queued OSDU, returning its
// sequence number. This is the source-side compensation of
// Orch.Regulate: "discards are performed at the source by incrementing
// the source shared buffer pointer", letting the application immediately
// overwrite the dropped OSDU (§6.3.1.1).
func (r *Ring) DropNewest() (core.OSDUSeq, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0, false
	}
	r.tail = (r.tail - 1 + len(r.slots)) % len(r.slots)
	r.count--
	seq := r.seqs[r.tail]
	r.notFull.Signal()
	return seq, true
}

// Flush discards every queued OSDU, returning how many were dropped. Used
// when a stopped source seeks elsewhere: without it "a short burst of
// media buffered from the previous play would be discernible" (§6.2.1).
func (r *Ring) Flush() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	r.head, r.tail, r.count = 0, 0, 0
	r.notFull.Broadcast()
	return n
}

// HoldDelivery closes the delivery gate: producers may continue filling
// slots, but Get blocks even when data is queued. This is how the sink
// LLO primes a connection (§6.2.1).
func (r *Ring) HoldDelivery() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gated = true
}

// ReleaseDelivery opens the delivery gate, waking blocked consumers —
// the sink half of the atomic Orch.Start (§6.2.2).
func (r *Ring) ReleaseDelivery() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gated = false
	r.notEmpty.Broadcast()
}

// Gated reports whether the delivery gate is held.
func (r *Ring) Gated() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gated
}

// Close unblocks all waiters. Queued OSDUs may still be drained with Get;
// afterwards Get returns ErrClosed, and Put fails immediately.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	r.signalFull() // wake NotifyFull waiters so they observe the close
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// TakeStats returns the blocking times accumulated since the previous call
// and resets them — one call per regulation interval (§6.3.1.2).
func (r *Ring) TakeStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{ProducerBlocked: r.prodBlocked, ConsumerBlocked: r.consBlocked}
	r.prodBlocked, r.consBlocked = 0, 0
	return s
}

// SlotSize returns the per-slot capacity in bytes (the MaxOSDUSize bound).
func (r *Ring) SlotSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots[0])
}

// ResizeSlots re-allocates every slot to hold OSDUs up to maxOSDU bytes,
// preserving queued contents and all waiters. It is the buffer half of
// the paper's transparent re-establishment (§3.3): when re-negotiation
// changes MaxOSDUSize the connection's buffers are rebuilt in place
// "maintaining buffers and protocol state over the successive
// connections". Shrinking below the size of a queued OSDU fails.
func (r *Ring) ResizeSlots(maxOSDU int) error {
	if maxOSDU <= 0 {
		return errors.New("cbuf: max OSDU size must be positive")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.count; i++ {
		idx := (r.head + i) % len(r.slots)
		if r.sizes[idx] > maxOSDU {
			return errors.New("cbuf: queued OSDU exceeds new slot size")
		}
	}
	n := len(r.slots)
	backing := make([]byte, n*maxOSDU)
	slots := make([][]byte, n)
	sizes := make([]int, n)
	seqs := make([]core.OSDUSeq, n)
	events := make([]core.EventPattern, n)
	for i := range slots {
		slots[i] = backing[i*maxOSDU : (i+1)*maxOSDU]
	}
	for i := 0; i < r.count; i++ {
		idx := (r.head + i) % n
		copy(slots[i], r.slots[idx][:r.sizes[idx]])
		sizes[i] = r.sizes[idx]
		seqs[i] = r.seqs[idx]
		events[i] = r.events[idx]
	}
	r.slots, r.sizes, r.seqs, r.events = slots, sizes, seqs, events
	if maxOSDU > len(r.scratch) {
		r.scratch = make([]byte, maxOSDU)
	}
	r.head = 0
	r.tail = r.count % n
	return nil
}

// NextSeq returns the sequence number of the OSDU at the head of the ring
// without removing it; ok is false when the ring is empty.
func (r *Ring) NextSeq() (core.OSDUSeq, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0, false
	}
	return r.seqs[r.head], true
}

// LastSeq returns the sequence number of the most recently queued OSDU
// still in the ring; ok is false when the ring is empty.
func (r *Ring) LastSeq() (core.OSDUSeq, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0, false
	}
	return r.seqs[(r.tail-1+len(r.slots))%len(r.slots)], true
}
