package cbuf

import (
	"testing"
	"time"

	"cmtos/internal/core"
	"cmtos/internal/pdu"
	"cmtos/internal/stats"
)

// BenchmarkStatsOverhead compares the per-OSDU data path — ring transfer
// plus the protocol work the transport does for every OSDU (checksummed
// TPDU encode and decode) — with and without registry instruments
// attached. The "noop" variant uses a nil registry, so every instrument
// is a nil pointer and each update is a nil-check no-op; that is exactly
// the disabled-metrics production path. The instrumented variant must
// stay within 5% of no-op; run with
//
//	go test -run - -bench StatsOverhead ./internal/cbuf/
func BenchmarkStatsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *stats.Registry) {
		sc := reg.Scope("host/1/vc/1")
		// The instruments the transport touches per OSDU: a written and
		// a sent counter on the producer side, a delivered counter on
		// the consumer side, and (every AckEvery-th OSDU) an ack-RTT
		// histogram observation.
		written := sc.Counter("send/osdus_written")
		sent := sc.Counter("send/osdus_sent")
		delivered := sc.Counter("recv/osdus_delivered")
		ackRTT := sc.Histogram("send/ack_rtt_seconds", stats.DurationBuckets())
		const ackEvery = 8

		r := New(sys, 16, 1200)
		r.SetBlockStats(
			sc.Histogram("send/block_app_seconds", stats.DurationBuckets()),
			sc.Histogram("send/block_proto_seconds", stats.DurationBuckets()),
		)
		payload := make([]byte, 1024)
		sentAt := time.Unix(0, 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			scratch := make([]byte, 0, 1200)
			for {
				u, err := r.Get()
				if err != nil {
					return
				}
				// Per-OSDU receive work: decode + verify the TPDU.
				m, err := pdu.Decode(u.Payload)
				if err != nil {
					b.Error(err)
					return
				}
				d := m.(*pdu.Data)
				delivered.Inc()
				if d.OSDU%ackEvery == 0 {
					ackRTT.Observe(float64(d.Seq&0xff) * 1e-6)
				}
				_ = scratch
			}
		}()
		buf := make([]byte, 0, 1200)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			written.Inc()
			// Per-OSDU send work: marshal a checksummed data TPDU.
			d := &pdu.Data{
				VC: 1, Seq: uint64(i), OSDU: core.OSDUSeq(i),
				FragCount: 1, OSDUSize: uint32(len(payload)),
				SentAt: sentAt, Payload: payload,
			}
			buf = d.Marshal(buf[:0])
			if err := r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: buf}); err != nil {
				b.Fatal(err)
			}
			sent.Inc()
		}
		r.Close()
		<-done
	}
	b.Run("noop", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { run(b, stats.NewRegistry()) })
}
