package cbuf

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
)

var sys clock.System

func newRing(n, max int) *Ring { return New(sys, n, max) }

func TestPutGetPreservesBoundariesAndOrder(t *testing.T) {
	r := newRing(4, 64)
	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), {}}
	for i, p := range payloads {
		if err := r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: p}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		u, err := r.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if u.Seq != core.OSDUSeq(i) {
			t.Errorf("seq = %d, want %d", u.Seq, i)
		}
		if !bytes.Equal(u.Payload, p) {
			t.Errorf("payload %d = %q, want %q", i, u.Payload, p)
		}
	}
}

func TestPutRejectsOversizedOSDU(t *testing.T) {
	r := newRing(2, 8)
	if err := r.Put(OSDU{Payload: make([]byte, 9)}); err == nil {
		t.Fatal("oversized Put succeeded")
	}
	if ok, err := r.TryPut(OSDU{Payload: make([]byte, 9)}); ok || err == nil {
		t.Fatal("oversized TryPut succeeded")
	}
}

func TestEventFieldCarried(t *testing.T) {
	r := newRing(2, 8)
	if err := r.Put(OSDU{Seq: 1, Event: 0xBEEF, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	u, err := r.Get()
	if err != nil || u.Event != 0xBEEF {
		t.Fatalf("event = %x, err = %v", u.Event, err)
	}
}

func TestTryPutFullAndTryGetEmpty(t *testing.T) {
	r := newRing(1, 8)
	if ok, err := r.TryPut(OSDU{Payload: []byte("a")}); !ok || err != nil {
		t.Fatalf("first TryPut = %v/%v", ok, err)
	}
	if ok, _ := r.TryPut(OSDU{Payload: []byte("b")}); ok {
		t.Fatal("TryPut succeeded on full ring")
	}
	if _, err := r.Get(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.TryGet(); ok || err != nil {
		t.Fatalf("TryGet on empty = %v/%v", ok, err)
	}
}

func TestBlockingPutWakesOnGet(t *testing.T) {
	r := newRing(1, 8)
	if err := r.Put(OSDU{Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Put(OSDU{Payload: []byte("b")}) }()
	select {
	case err := <-done:
		t.Fatalf("Put returned before Get: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := r.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put never woke")
	}
}

func TestBlockingGetWakesOnPut(t *testing.T) {
	r := newRing(1, 8)
	got := make(chan OSDU, 1)
	go func() {
		u, err := r.Get()
		if err != nil {
			t.Error(err)
		}
		got <- u
	}()
	time.Sleep(5 * time.Millisecond)
	if err := r.Put(OSDU{Seq: 7, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-got:
		if u.Seq != 7 {
			t.Fatalf("seq = %d, want 7", u.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Get never woke")
	}
}

func TestDeliveryGateHoldsDataBack(t *testing.T) {
	r := newRing(2, 8)
	r.HoldDelivery()
	if err := r.Put(OSDU{Seq: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.TryGet(); ok {
		t.Fatal("TryGet returned data through a held gate")
	}
	got := make(chan core.OSDUSeq, 1)
	go func() {
		u, err := r.Get()
		if err != nil {
			t.Error(err)
		}
		got <- u.Seq
	}()
	select {
	case <-got:
		t.Fatal("Get returned through a held gate")
	case <-time.After(10 * time.Millisecond):
	}
	r.ReleaseDelivery()
	select {
	case seq := <-got:
		if seq != 1 {
			t.Fatalf("seq = %d, want 1", seq)
		}
	case <-time.After(time.Second):
		t.Fatal("Get never woke after ReleaseDelivery")
	}
	if r.Gated() {
		t.Fatal("Gated still true after release")
	}
}

func TestPrimeFillsWhileGated(t *testing.T) {
	// The paper's prime: producers fill every slot while the gate holds
	// delivery; Full() then signals "primed".
	r := newRing(3, 8)
	r.HoldDelivery()
	for i := 0; i < 3; i++ {
		if err := r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Full() {
		t.Fatal("ring not full after filling while gated")
	}
}

func TestDropNewest(t *testing.T) {
	r := newRing(4, 8)
	for i := 1; i <= 3; i++ {
		_ = r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: []byte("x")})
	}
	seq, ok := r.DropNewest()
	if !ok || seq != 3 {
		t.Fatalf("DropNewest = %d/%v, want 3/true", seq, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	// Order of the remainder is unchanged.
	u, _ := r.Get()
	if u.Seq != 1 {
		t.Fatalf("head seq = %d, want 1", u.Seq)
	}
	// Empty ring: no drop.
	r2 := newRing(1, 8)
	if _, ok := r2.DropNewest(); ok {
		t.Fatal("DropNewest on empty ring reported ok")
	}
}

func TestFlushEmptiesAndWakesProducers(t *testing.T) {
	r := newRing(1, 8)
	_ = r.Put(OSDU{Seq: 1, Payload: []byte("x")})
	done := make(chan error, 1)
	go func() { done <- r.Put(OSDU{Seq: 2, Payload: []byte("y")}) }()
	time.Sleep(5 * time.Millisecond)
	if n := r.Flush(); n != 1 {
		t.Fatalf("Flush dropped %d, want 1", n)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("producer never woke after Flush")
	}
	u, err := r.Get()
	if err != nil || u.Seq != 2 {
		t.Fatalf("after flush got seq %d, want 2", u.Seq)
	}
}

func TestCloseUnblocksAndDrains(t *testing.T) {
	r := newRing(2, 8)
	_ = r.Put(OSDU{Seq: 1, Payload: []byte("x")})
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if err := r.Put(OSDU{Seq: 2, Payload: []byte("y")}); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	u, err := r.Get()
	if err != nil || u.Seq != 1 {
		t.Fatalf("drain after close: %v/%v", u.Seq, err)
	}
	if _, err := r.Get(); err != ErrClosed {
		t.Fatalf("Get on drained closed ring = %v, want ErrClosed", err)
	}
	if _, _, err := r.TryGet(); err != ErrClosed {
		t.Fatalf("TryGet on drained closed ring = %v, want ErrClosed", err)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	empty := newRing(1, 8) // consumer blocks on this one
	full := newRing(1, 8)  // producer blocks on this one
	_ = full.Put(OSDU{Payload: []byte("x")})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := empty.Get(); err != ErrClosed {
			t.Errorf("blocked Get = %v, want ErrClosed", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := full.Put(OSDU{Payload: []byte("y")}); err != ErrClosed {
			t.Errorf("blocked Put = %v, want ErrClosed", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	empty.Close()
	full.Close()
	wg.Wait()
}

func TestBlockingStatsAttributed(t *testing.T) {
	r := newRing(1, 8)
	_ = r.Put(OSDU{Payload: []byte("x")})
	go func() {
		time.Sleep(30 * time.Millisecond)
		_, _ = r.Get()
	}()
	if err := r.Put(OSDU{Payload: []byte("y")}); err != nil { // blocks ~30ms
		t.Fatal(err)
	}
	s := r.TakeStats()
	if s.ProducerBlocked < 10*time.Millisecond {
		t.Fatalf("producer blocked %v, want >=10ms", s.ProducerBlocked)
	}
	if s.ConsumerBlocked != 0 {
		t.Fatalf("consumer blocked %v, want 0", s.ConsumerBlocked)
	}
	// Stats reset on read.
	if s2 := r.TakeStats(); s2.ProducerBlocked != 0 || s2.ConsumerBlocked != 0 {
		t.Fatalf("stats not reset: %+v", s2)
	}
}

func TestConsumerBlockedStat(t *testing.T) {
	r := newRing(1, 8)
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = r.Put(OSDU{Payload: []byte("x")})
	}()
	if _, err := r.Get(); err != nil {
		t.Fatal(err)
	}
	s := r.TakeStats()
	if s.ConsumerBlocked < 10*time.Millisecond {
		t.Fatalf("consumer blocked %v, want >=10ms", s.ConsumerBlocked)
	}
}

func TestNextSeqPeeks(t *testing.T) {
	r := newRing(2, 8)
	if _, ok := r.NextSeq(); ok {
		t.Fatal("NextSeq on empty ring reported ok")
	}
	_ = r.Put(OSDU{Seq: 42, Payload: []byte("x")})
	seq, ok := r.NextSeq()
	if !ok || seq != 42 {
		t.Fatalf("NextSeq = %d/%v, want 42/true", seq, ok)
	}
	if r.Len() != 1 {
		t.Fatal("NextSeq consumed the OSDU")
	}
}

func TestGetPayloadValidUntilSlotReuse(t *testing.T) {
	r := newRing(2, 8)
	_ = r.Put(OSDU{Seq: 1, Payload: []byte("AA")})
	_ = r.Put(OSDU{Seq: 2, Payload: []byte("BB")})
	u1, _ := r.Get()
	got := string(u1.Payload) // copy now, before slot reuse
	if got != "AA" {
		t.Fatalf("payload = %q", got)
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	r := newRing(8, 16)
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("%d", i))
			if err := r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: payload}); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		u, err := r.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if u.Seq != core.OSDUSeq(i) {
			t.Fatalf("seq = %d, want %d (FIFO violated)", u.Seq, i)
		}
		if want := fmt.Sprintf("%d", i); string(u.Payload) != want {
			t.Fatalf("payload = %q, want %q", u.Payload, want)
		}
	}
	wg.Wait()
}

func TestNewPanicsOnBadArguments(t *testing.T) {
	for _, args := range [][2]int{{0, 8}, {8, 0}, {-1, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", args[0], args[1])
				}
			}()
			New(sys, args[0], args[1])
		}()
	}
}

// Property: any interleaving of puts and gets preserves FIFO order of
// sequence numbers and never loses or duplicates an OSDU.
func TestQuickFIFO(t *testing.T) {
	f := func(sizes []uint8) bool {
		r := newRing(4, 4)
		var produced, consumed []core.OSDUSeq
		seq := core.OSDUSeq(0)
		for _, s := range sizes {
			if s%2 == 0 {
				if ok, _ := r.TryPut(OSDU{Seq: seq, Payload: []byte{byte(seq)}}); ok {
					produced = append(produced, seq)
					seq++
				}
			} else if u, ok, _ := r.TryGet(); ok {
				consumed = append(consumed, u.Seq)
			}
		}
		for {
			u, ok, _ := r.TryGet()
			if !ok {
				break
			}
			consumed = append(consumed, u.Seq)
		}
		if len(produced) != len(consumed) {
			return false
		}
		for i := range produced {
			if produced[i] != consumed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResizeSlotsGrowPreservesContents(t *testing.T) {
	r := newRing(4, 8)
	for i := 1; i <= 3; i++ {
		_ = r.Put(OSDU{Seq: core.OSDUSeq(i), Event: core.EventPattern(i), Payload: []byte{byte(i), byte(i + 1)}})
	}
	_, _ = r.Get() // advance head so the ring is wrapped
	_ = r.Put(OSDU{Seq: 4, Payload: []byte{4, 5}})
	if err := r.ResizeSlots(64); err != nil {
		t.Fatal(err)
	}
	if r.SlotSize() != 64 {
		t.Fatalf("SlotSize = %d", r.SlotSize())
	}
	for i := 2; i <= 4; i++ {
		u, err := r.Get()
		if err != nil {
			t.Fatal(err)
		}
		if u.Seq != core.OSDUSeq(i) || u.Payload[0] != byte(i) {
			t.Fatalf("after resize: seq %d payload %v", u.Seq, u.Payload)
		}
	}
	// Larger OSDUs now fit.
	if err := r.Put(OSDU{Seq: 9, Payload: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
}

func TestResizeSlotsShrinkRejectedWhenContentTooBig(t *testing.T) {
	r := newRing(2, 32)
	_ = r.Put(OSDU{Seq: 1, Payload: make([]byte, 20)})
	if err := r.ResizeSlots(8); err == nil {
		t.Fatal("shrink below queued OSDU size succeeded")
	}
	// Shrink is fine when contents fit.
	if err := r.ResizeSlots(24); err != nil {
		t.Fatal(err)
	}
	u, err := r.Get()
	if err != nil || len(u.Payload) != 20 {
		t.Fatalf("content lost on legal shrink: %d/%v", len(u.Payload), err)
	}
}

func TestResizeSlotsRejectsNonPositive(t *testing.T) {
	r := newRing(2, 8)
	if err := r.ResizeSlots(0); err == nil {
		t.Fatal("zero resize accepted")
	}
}

func TestResizeSlotsKeepsCapacityAndOrderAcrossWrap(t *testing.T) {
	r := newRing(3, 4)
	for i := 0; i < 3; i++ {
		_ = r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: []byte{byte(i)}})
	}
	_, _ = r.Get()
	_, _ = r.Get()
	_ = r.Put(OSDU{Seq: 3, Payload: []byte{3}})
	_ = r.Put(OSDU{Seq: 4, Payload: []byte{4}}) // ring wrapped, full
	if err := r.ResizeSlots(16); err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 3 || r.Len() != 3 {
		t.Fatalf("cap/len = %d/%d", r.Cap(), r.Len())
	}
	for want := 2; want <= 4; want++ {
		u, _ := r.Get()
		if int(u.Seq) != want {
			t.Fatalf("seq = %d, want %d", u.Seq, want)
		}
	}
}

func TestNotifyFullSignalsOnLastSlot(t *testing.T) {
	r := newRing(3, 16)
	ch := make(chan struct{}, 1)
	r.NotifyFull(ch)
	for i := 0; i < 2; i++ {
		if err := r.Put(OSDU{Seq: core.OSDUSeq(i), Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-ch:
			t.Fatalf("signalled with %d free slots", 3-r.Len())
		default:
		}
	}
	if err := r.Put(OSDU{Seq: 2, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("last-slot Put never signalled")
	}
	// Registering against an already-full ring signals immediately.
	ch2 := make(chan struct{}, 1)
	r.NotifyFull(ch2)
	select {
	case <-ch2:
	case <-time.After(time.Second):
		t.Fatal("no immediate signal for an already-full ring")
	}
	// After deregistering, refilling must not signal.
	r.StopNotifyFull(ch)
	if _, err := r.Get(); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(OSDU{Seq: 3, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("deregistered channel still signalled")
	default:
	}
}

func TestNotifyFullWakesOnClose(t *testing.T) {
	r := newRing(4, 16)
	ch := make(chan struct{}, 1)
	r.NotifyFull(ch)
	r.Close()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Close never signalled NotifyFull waiters")
	}
}
