package cbuf

import (
	"sync"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
)

// Retainer keeps copies of OSDUs that have already left the send-side ring
// — accepted by the application and handed to the protocol thread — so a
// session supervisor can replay them after a VC failure, restarting the
// stream exactly at the sequence number the receiver last delivered.
//
// Retention is bounded the CM-appropriate way: continuous-media data goes
// stale, so entries older than the jitter bound (maxAge) and entries beyond
// the slot cap are expired rather than kept forever. Expired entries are
// counted; a replay that can no longer reach back to the requested sequence
// reports the shortfall so the caller can account the gap.
type Retainer struct {
	clk    clock.Clock
	maxAge time.Duration
	cap    int

	mu      sync.Mutex
	entries []retained
	expired uint64
}

type retained struct {
	seq     core.OSDUSeq
	event   core.EventPattern
	at      time.Time
	payload []byte
}

// NewRetainer returns a retainer holding at most cap OSDUs, each for at
// most maxAge. A cap <= 0 or maxAge <= 0 disables the respective bound.
func NewRetainer(clk clock.Clock, cap int, maxAge time.Duration) *Retainer {
	return &Retainer{clk: clk, maxAge: maxAge, cap: cap}
}

// Keep copies u into the retained range. OSDUs must be kept in sequence
// order (the send loop's natural order).
func (t *Retainer) Keep(u OSDU) {
	p := make([]byte, len(u.Payload))
	copy(p, u.Payload)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = append(t.entries, retained{seq: u.Seq, event: u.Event, at: t.clk.Now(), payload: p})
	t.pruneLocked()
}

// pruneLocked drops entries past the age bound and beyond the cap,
// oldest-first; caller holds mu.
func (t *Retainer) pruneLocked() {
	i := 0
	if t.maxAge > 0 {
		now := t.clk.Now()
		for i < len(t.entries) && now.Sub(t.entries[i].at) > t.maxAge {
			i++
		}
	}
	if t.cap > 0 && len(t.entries)-i > t.cap {
		i = len(t.entries) - t.cap
	}
	if i > 0 {
		t.expired += uint64(i)
		t.entries = append(t.entries[:0], t.entries[i:]...)
	}
}

// DropThrough discards every retained OSDU with sequence below seq — data
// the receiver has confirmed delivered. These do not count as expired.
func (t *Retainer) DropThrough(seq core.OSDUSeq) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := 0
	for i < len(t.entries) && t.entries[i].seq < seq {
		i++
	}
	if i > 0 {
		t.entries = append(t.entries[:0], t.entries[i:]...)
	}
}

// ReplayFrom returns copies of every retained OSDU with sequence >= seq,
// oldest-first, after expiring stale entries. missed reports how many
// OSDUs in [seq, first returned) have already been expired and cannot be
// replayed — the receiver will observe that gap as loss.
func (t *Retainer) ReplayFrom(seq core.OSDUSeq) (out []OSDU, missed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneLocked()
	first := seq
	for _, e := range t.entries {
		if e.seq < seq {
			continue
		}
		if len(out) == 0 && e.seq > first {
			missed = int(e.seq - first)
		}
		p := make([]byte, len(e.payload))
		copy(p, e.payload)
		out = append(out, OSDU{Seq: e.seq, Event: e.event, Payload: p})
	}
	return out, missed
}

// LastSeq returns the highest retained sequence number; ok is false when
// nothing is retained.
func (t *Retainer) LastSeq() (core.OSDUSeq, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) == 0 {
		return 0, false
	}
	return t.entries[len(t.entries)-1].seq, true
}

// Expired returns the cumulative count of retained OSDUs dropped by the
// age and cap bounds.
func (t *Retainer) Expired() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expired
}

// Len returns the number of currently retained OSDUs.
func (t *Retainer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
