package cbuf

import (
	"testing"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
)

func put(t *testing.T, r *Ring, seq core.OSDUSeq, payload string) {
	t.Helper()
	if err := r.Put(OSDU{Seq: seq, Payload: []byte(payload)}); err != nil {
		t.Fatalf("Put(%d): %v", seq, err)
	}
}

func TestSealReturnsExactConsumedWatermark(t *testing.T) {
	r := New(sys, 4, 64)
	for i := 0; i < 4; i++ {
		put(t, r, core.OSDUSeq(i), "x")
	}
	for i := 0; i < 2; i++ {
		u, err := r.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if u.Seq != core.OSDUSeq(i) {
			t.Fatalf("Get seq = %d, want %d", u.Seq, i)
		}
	}
	if got := r.Consumed(); got != 2 {
		t.Fatalf("Consumed = %d, want 2", got)
	}
	if got := r.Seal(); got != 2 {
		t.Fatalf("Seal = %d, want 2", got)
	}
	// Unlike Close, Seal discards the queued remainder: no further Get may
	// succeed, so the watermark stays exact.
	if _, err := r.Get(); err != ErrClosed {
		t.Fatalf("Get after Seal = %v, want ErrClosed", err)
	}
	if !r.Sealed() || !r.Closed() {
		t.Fatal("Sealed/Closed should report true after Seal")
	}
	if got := r.Consumed(); got != 2 {
		t.Fatalf("Consumed after Seal = %d, want 2", got)
	}
}

func TestCloseStillDrainsButSealDoesNot(t *testing.T) {
	r := New(sys, 4, 64)
	put(t, r, 0, "a")
	r.Close()
	if u, err := r.Get(); err != nil || u.Seq != 0 {
		t.Fatalf("Get after Close = (%v, %v), want seq 0", u.Seq, err)
	}
	if _, err := r.Get(); err != ErrClosed {
		t.Fatalf("drained Get = %v, want ErrClosed", err)
	}
}

func TestDrainCopiesQueuedOSDUs(t *testing.T) {
	r := New(sys, 4, 64)
	put(t, r, 5, "five")
	put(t, r, 6, "six")
	out := r.Drain()
	if len(out) != 2 || out[0].Seq != 5 || out[1].Seq != 6 {
		t.Fatalf("Drain = %+v, want seqs 5,6", out)
	}
	if string(out[0].Payload) != "five" || string(out[1].Payload) != "six" {
		t.Fatalf("Drain payloads = %q,%q", out[0].Payload, out[1].Payload)
	}
	// Payloads must be copies, not scratch aliases: both remain intact.
	if &out[0].Payload[0] == &out[1].Payload[0] {
		t.Fatal("Drain payloads alias each other")
	}
	if r.Len() != 0 {
		t.Fatalf("Len after Drain = %d, want 0", r.Len())
	}
	if got := r.Consumed(); got != 7 {
		t.Fatalf("Consumed after Drain = %d, want 7", got)
	}
}

func TestRetainerReplayAndDrop(t *testing.T) {
	rt := NewRetainer(sys, 8, 0)
	for i := 0; i < 5; i++ {
		rt.Keep(OSDU{Seq: core.OSDUSeq(i), Payload: []byte{byte('a' + i)}})
	}
	out, missed := rt.ReplayFrom(2)
	if missed != 0 || len(out) != 3 || out[0].Seq != 2 || out[2].Seq != 4 {
		t.Fatalf("ReplayFrom(2) = %+v missed=%d", out, missed)
	}
	if string(out[1].Payload) != "d" {
		t.Fatalf("replayed payload = %q, want d", out[1].Payload)
	}
	rt.DropThrough(4)
	if rt.Len() != 1 {
		t.Fatalf("Len after DropThrough(4) = %d, want 1", rt.Len())
	}
	if rt.Expired() != 0 {
		t.Fatalf("DropThrough must not count as expired, got %d", rt.Expired())
	}
}

func TestRetainerCapEviction(t *testing.T) {
	rt := NewRetainer(sys, 3, 0)
	for i := 0; i < 5; i++ {
		rt.Keep(OSDU{Seq: core.OSDUSeq(i), Payload: []byte("p")})
	}
	if rt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rt.Len())
	}
	if rt.Expired() != 2 {
		t.Fatalf("Expired = %d, want 2", rt.Expired())
	}
	out, missed := rt.ReplayFrom(0)
	if len(out) != 3 || out[0].Seq != 2 {
		t.Fatalf("ReplayFrom(0) = %+v", out)
	}
	if missed != 2 {
		t.Fatalf("missed = %d, want 2 (seqs 0,1 expired)", missed)
	}
}

func TestRetainerAgeEviction(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	rt := NewRetainer(clk, 0, 100*time.Millisecond)
	rt.Keep(OSDU{Seq: 0, Payload: []byte("old")})
	clk.Advance(200 * time.Millisecond)
	rt.Keep(OSDU{Seq: 1, Payload: []byte("new")})
	if rt.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (seq 0 aged out)", rt.Len())
	}
	if rt.Expired() != 1 {
		t.Fatalf("Expired = %d, want 1", rt.Expired())
	}
	out, missed := rt.ReplayFrom(0)
	if len(out) != 1 || out[0].Seq != 1 || missed != 1 {
		t.Fatalf("ReplayFrom(0) = %+v missed=%d", out, missed)
	}
}
