// Lipsync: the paper's motivating example (§1, §3.6) — the video and
// sound-track components of a film are stored on two different servers
// and must play out in lip sync (ten audio chunks per video frame) at a
// single workstation. The servers' clocks drift (here ±2%, an
// exaggerated crystal error so one minute of drift shows in seconds).
//
// The play-out runs twice: first unorchestrated, where the streams start
// ragged and drift apart; then orchestrated, where Orch.Prime/Start give
// a simultaneous start and the HLO agent's regulation (Fig. 6) pins both
// streams to the orchestrating node's master clock.
//
//	go run ./examples/lipsync
package main

import (
	"fmt"
	"log"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

const (
	videoRate = 25.0  // frames/sec
	audioRate = 250.0 // chunks/sec: the 10:1 ratio of §3.6
	playFor   = 3 * time.Second
)

func main() {
	sys := clock.System{}

	fmt.Println("== play-out 1: unorchestrated (free-running servers) ==")
	skewMax, start := run(sys, false)
	fmt.Printf("   start skew %v, max lip-sync error %v\n\n",
		start.Round(time.Millisecond), skewMax.Round(time.Millisecond))

	fmt.Println("== play-out 2: orchestrated (Prime/Start + Fig. 6 regulation) ==")
	skewMaxO, startO := run(sys, true)
	fmt.Printf("   start skew %v, max lip-sync error %v\n\n",
		startO.Round(time.Millisecond), skewMaxO.Round(time.Millisecond))

	fmt.Printf("orchestration reduced the maximum lip-sync error %vx\n",
		int(float64(skewMax)/float64(max(skewMaxO, time.Millisecond))))
}

// run plays the film once and returns (max skew, start skew).
func run(sys clock.System, orchestrated bool) (time.Duration, time.Duration) {
	nw := netem.New(sys)
	for id := core.HostID(1); id <= 3; id++ {
		check(nw.AddHost(id, nil))
	}
	link := netem.LinkConfig{Bandwidth: 12e6, Delay: 2 * time.Millisecond, Jitter: time.Millisecond}
	check(nw.AddLink(1, 3, link))
	check(nw.AddLink(2, 3, link))
	check(nw.AddLink(1, 2, link))
	check(nw.Start())
	defer nw.Close()
	rm := resv.New(nw)

	// Server clocks drift in opposite directions.
	videoClk := clock.NewSkewed(sys, 1.02, 0) // 2% fast
	audioClk := clock.NewSkewed(sys, 0.98, 0) // 2% slow
	eVideo, err := transport.NewEntity(1, videoClk, nw, rm, transport.Config{RingSlots: 16})
	check(err)
	eAudio, err := transport.NewEntity(2, audioClk, nw, rm, transport.Config{RingSlots: 16})
	check(err)
	eSink, err := transport.NewEntity(3, sys, nw, rm, transport.Config{RingSlots: 16})
	check(err)
	defer eVideo.Close()
	defer eAudio.Close()
	defer eSink.Close()
	lVideo, lAudio, lSink := orch.New(eVideo), orch.New(eAudio), orch.New(eSink)
	defer lVideo.Close()
	defer lAudio.Close()
	defer lSink.Close()

	// Connect the two tracks to the workstation.
	videoSink, audioSink := media.NewSink(), media.NewSink()
	vs := connectTrack(eVideo, eSink, 10, videoRate, 2048)
	as := connectTrack(eAudio, eSink, 11, audioRate, 256)

	// Source pumps: each server plays its track at its own clock rate.
	stopV, stopA := make(chan struct{}), make(chan struct{})
	defer close(stopV)
	defer close(stopA)
	go func() {
		_ = media.Pump(videoClk, &media.CBR{Size: 1400, FrameRate: videoRate}, vs.send, stopV)
	}()
	go func() {
		_ = media.Pump(audioClk, &media.CBR{Size: 192, FrameRate: audioRate}, as.send, stopA)
	}()
	go media.Drain(sys, vs.recv, videoSink, nil)
	go media.Drain(sys, as.recv, audioSink, nil)

	pair := &media.SyncPair{A: videoSink, B: audioSink, RateA: videoRate, RateB: audioRate}

	if orchestrated {
		agent, err := hlo.New(lSink, sys, 1, []hlo.StreamConfig{
			{Desc: orch.VCDesc{VC: vs.send.ID(), Source: 1, Sink: 3}, Rate: videoRate, MaxDrop: 2},
			{Desc: orch.VCDesc{VC: as.send.ID(), Source: 2, Sink: 3}, Rate: audioRate, MaxDrop: 10},
		}, hlo.Policy{Interval: 100 * time.Millisecond})
		check(err)
		check(agent.Setup())
		check(agent.Prime(false))
		check(agent.Start())
		defer agent.Release()
	}

	// Sample the lip-sync error every 100ms over the play-out.
	began := time.Now()
	for time.Since(began) < playFor {
		time.Sleep(250 * time.Millisecond)
		if videoSink.Received() > 0 && audioSink.Received() > 0 {
			skew := pair.Sample()
			fmt.Printf("   t=%4dms video %3d frames, audio %4d chunks, lip-sync error %6v\n",
				time.Since(began).Milliseconds(),
				videoSink.Received(), audioSink.Received(), skew.Round(time.Millisecond))
		}
	}
	vstats, astats := videoSink.Stats(), audioSink.Stats()
	startSkew := vstats.First.Sub(astats.First)
	if startSkew < 0 {
		startSkew = -startSkew
	}
	return pair.MaxSkew(), startSkew
}

type track struct {
	send *transport.SendVC
	recv *transport.RecvVC
}

func connectTrack(src, dst *transport.Entity, tsap core.TSAP, rate float64, frame int) track {
	recvCh := make(chan *transport.RecvVC, 1)
	check(dst.Attach(tsap+100, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) { recvCh <- rv },
	}))
	s, err := src.Connect(transport.ConnectRequest{
		SrcTSAP: tsap,
		Dest:    core.Addr{Host: dst.Host(), TSAP: tsap + 100},
		Class:   qos.ClassDetectIndicate,
		Spec: qos.Spec{
			Throughput:  qos.Tolerance{Preferred: rate * 1.3, Acceptable: rate / 2},
			MaxOSDUSize: frame,
			Delay:       qos.CeilTolerance{Preferred: 0.005, Acceptable: 0.3},
			Jitter:      qos.CeilTolerance{Preferred: 0.002, Acceptable: 0.2},
			PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.1},
			BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-4},
			Guarantee:   qos.Soft,
		},
	})
	check(err)
	return track{send: s, recv: <-recvCh}
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
