// Quickstart: the smallest complete use of the continuous-media transport
// service — two hosts, one negotiated simplex VC, a stored-media source
// played across it, and the sink's measured QoS printed at the end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

func main() {
	sys := clock.System{}

	// 1. A two-host network: 10 Mbit/s, 5ms propagation, 1ms jitter.
	nw := netem.New(sys)
	check(nw.AddHost(1, nil))
	check(nw.AddHost(2, nil))
	check(nw.AddLink(1, 2, netem.LinkConfig{
		Bandwidth: 10e6 / 8,
		Delay:     5 * time.Millisecond,
		Jitter:    time.Millisecond,
	}))
	check(nw.Start())
	defer nw.Close()

	// 2. A transport entity per host, sharing one reservation manager.
	rm := resv.New(nw)
	server, err := transport.NewEntity(1, sys, nw, rm, transport.Config{})
	check(err)
	player, err := transport.NewEntity(2, sys, nw, rm, transport.Config{})
	check(err)
	defer server.Close()
	defer player.Close()

	// 3. The player attaches a TSAP and accepts incoming connections.
	recvCh := make(chan *transport.RecvVC, 1)
	check(player.Attach(20, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) { recvCh <- rv },
		OnQoS: func(q transport.QoSIndication) {
			fmt.Printf("T-QoS.indication: violated %v (throughput %.1f/s, PER %.3f)\n",
				q.Violated, q.Report.Throughput, q.Report.PER)
		},
	}))

	// 4. The server connects a 25 frames/sec video VC with negotiated QoS.
	send, err := server.Connect(transport.ConnectRequest{
		SrcTSAP: 10,
		Dest:    core.Addr{Host: 2, TSAP: 20},
		Profile: qos.ProfileCMRate,
		Class:   qos.ClassDetectIndicate,
		Spec: qos.Spec{
			Throughput:  qos.Tolerance{Preferred: 25, Acceptable: 10},
			MaxOSDUSize: 8 * 1024,
			Delay:       qos.CeilTolerance{Preferred: 0.010, Acceptable: 0.200},
			Jitter:      qos.CeilTolerance{Preferred: 0.002, Acceptable: 0.100},
			PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.05},
			BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-4},
			Guarantee:   qos.Soft,
		},
	})
	check(err)
	rv := <-recvCh
	c := send.Contract()
	fmt.Printf("connected %v: %.0f OSDU/s, delay <= %v, jitter <= %v, PER <= %.2f\n",
		send.ID(), c.Throughput, c.Delay, c.Jitter, c.PER)

	// 5. Play 2 seconds of 25fps video through the VC.
	src := &media.CBR{Size: 4096, FrameRate: 25, Count: 50}
	sink := media.NewSink()
	sink.VerifyCBR = true
	sink.NominalRate = 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := media.Pump(sys, src, send, nil); err != nil {
			log.Printf("pump: %v", err)
		}
	}()
	go media.Drain(sys, rv, sink, nil)
	<-done
	time.Sleep(200 * time.Millisecond) // let the tail arrive

	// 6. Report what the player saw.
	st := sink.Stats()
	fmt.Printf("delivered %d/50 frames, %d gaps, %d corrupt\n", st.Received, st.Gaps, st.Corrupt)
	fmt.Printf("inter-arrival mean %v, max %v, jitter stddev %v\n",
		st.MeanInterArrival.Round(time.Millisecond),
		st.MaxInterArrival.Round(time.Millisecond),
		st.JitterStdDev.Round(100*time.Microsecond))
	rep := rv.LastReport()
	fmt.Printf("last sample period: throughput %.1f OSDU/s, mean delay %v\n",
		rep.Throughput, rep.MeanDelay.Round(100*time.Microsecond))
	check(send.Close(core.ReasonUserInitiated))
	fmt.Println("disconnected")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
