// Microscope: the remote-access scenario that motivated the remote
// connection facility (§2.2, §3.5, Figs. 2-3). A scientist's workstation
// (host 3) connects the electron microscope's camera on host 1 to a
// colleague's monitor on host 2: the initiator, source and sink are three
// distinct end-systems. The session then demonstrates dynamic QoS
// control (§3.3): the scientist downgrades the feed from "colour" to
// "monochrome" (half the frame size and rate) mid-session with
// T-Renegotiate, and finally releases the stream remotely.
//
//	go run ./examples/microscope
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/platform"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

func main() {
	sys := clock.System{}
	nw := netem.New(sys)
	for id := core.HostID(1); id <= 3; id++ {
		check(nw.AddHost(id, nil))
	}
	link := netem.LinkConfig{Bandwidth: 4e6, Delay: 2 * time.Millisecond, Jitter: 500 * time.Microsecond}
	check(nw.AddLink(1, 2, link))
	check(nw.AddLink(1, 3, link))
	check(nw.AddLink(2, 3, link))
	check(nw.Start())
	defer nw.Close()

	rm := resv.New(nw)
	plats := make(map[core.HostID]*platform.Platform)
	for id := core.HostID(1); id <= 3; id++ {
		e, err := transport.NewEntity(id, sys, nw, rm, transport.Config{})
		check(err)
		defer e.Close()
		l := orch.New(e)
		defer l.Close()
		plats[id] = platform.NewPlatform(platform.NewCapsule(e), l)
	}

	// Host 1: the microscope. Its camera is a live 20fps source.
	check(plats[1].RegisterProducer("em.camera", 20, 8192, func() media.Source {
		return &media.CBR{Size: 6000, FrameRate: 20} // "colour" frames
	}))

	// Host 2: the colleague's monitor.
	var frames atomic.Int64
	var bytes atomic.Int64
	check(plats[2].RegisterConsumer("monitor", func(f media.Frame, at time.Time) {
		frames.Add(1)
		bytes.Add(int64(len(f.Data)))
	}))

	// Host 3: the scientist initiates the remote connect (Fig. 2).
	fmt.Println("scientist@h3: connecting em.camera@h1 -> monitor@h2 (remote connect)")
	stream, err := plats[3].CreateStream(
		platform.DeviceRef{Host: 1, Name: "em.camera"},
		platform.DeviceRef{Host: 2, Name: "monitor"},
		platform.MediaQoS{}, // adopt the camera's terms: 20fps colour
	)
	check(err)
	fmt.Printf("  established %v: %.0f fps, frame bound %d B, delay <= %v\n",
		stream.VC, stream.Contract.Throughput, stream.Contract.MaxOSDUSize,
		stream.Contract.Delay.Round(time.Millisecond))

	time.Sleep(time.Second)
	f1, b1 := frames.Load(), bytes.Load()
	fmt.Printf("  after 1s of colour video: %d frames, %.1f KB/s\n", f1, float64(b1)/1024)

	// Mid-session downgrade to monochrome: half rate, smaller frames
	// (the §3.3 example of using the same VC for different purposes).
	fmt.Println("scientist@h3: renegotiating to monochrome (10 fps, small frames)")
	contract, err := plats[3].RenegotiateStream(stream, platform.MediaQoS{
		FrameRate: 10, FrameBound: 8192,
	})
	check(err)
	fmt.Printf("  new contract: %.0f fps\n", contract.Throughput)

	frames.Store(0)
	bytes.Store(0)
	time.Sleep(time.Second)
	f2 := frames.Load()
	fmt.Printf("  after 1s of monochrome: %d frames (rate roughly halved: %v)\n",
		f2, f2 < f1)

	// Remote release (§4.1.1): the initiator ends the session.
	fmt.Println("scientist@h3: releasing the stream remotely")
	check(plats[3].CloseStream(stream))
	time.Sleep(100 * time.Millisecond)
	n := frames.Load()
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("  flow stopped: %v\n", frames.Load() <= n+1)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
