// Languagelab: the paper's language-laboratory scenario (§3.6) — separate
// audio tracks in different languages are stored on a single server and
// distributed to different student workstations in a real-time
// interactive lesson. The common node is the SOURCE this time (Fig. 5),
// so the server hosts the HLO agent. The teacher starts, pauses and
// resumes the lesson; the atomic group Stop/Prime/Start keeps every
// student at the same point in the lesson, and a mid-lesson seek shows
// the flush-prime cleaning stale audio out of the buffers (§6.2.1).
//
//	go run ./examples/languagelab
package main

import (
	"fmt"
	"log"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

const chunkRate = 50.0 // audio chunks per second

var languages = []string{"french", "german", "spanish"}

func main() {
	sys := clock.System{}
	nw := netem.New(sys)
	// Host 1: the language server; hosts 2-4: student workstations.
	for id := core.HostID(1); id <= 4; id++ {
		check(nw.AddHost(id, nil))
	}
	link := netem.LinkConfig{Bandwidth: 2e6, Delay: 3 * time.Millisecond, Jitter: time.Millisecond}
	for id := core.HostID(2); id <= 4; id++ {
		check(nw.AddLink(1, id, link))
	}
	check(nw.Start())
	defer nw.Close()
	rm := resv.New(nw)

	ents := make(map[core.HostID]*transport.Entity)
	llos := make(map[core.HostID]*orch.LLO)
	for id := core.HostID(1); id <= 4; id++ {
		e, err := transport.NewEntity(id, sys, nw, rm, transport.Config{RingSlots: 12})
		check(err)
		defer e.Close()
		ents[id] = e
		llos[id] = orch.New(e)
		defer llos[id].Close()
	}

	// One track per student; sources are seekable stored media.
	students := make([]*student, len(languages))
	var descs []hlo.StreamConfig
	for i, lang := range languages {
		host := core.HostID(2 + i)
		recvCh := make(chan *transport.RecvVC, 1)
		check(ents[host].Attach(20, transport.UserCallbacks{
			OnRecvReady: func(rv *transport.RecvVC) { recvCh <- rv },
		}))
		s, err := ents[1].Connect(transport.ConnectRequest{
			SrcTSAP: core.TSAP(10 + i),
			Dest:    core.Addr{Host: host, TSAP: 20},
			Class:   qos.ClassDetectIndicate,
			Spec: qos.Spec{
				Throughput:  qos.Tolerance{Preferred: chunkRate * 1.3, Acceptable: chunkRate / 2},
				MaxOSDUSize: 512,
				Delay:       qos.CeilTolerance{Preferred: 0.005, Acceptable: 0.3},
				Jitter:      qos.CeilTolerance{Preferred: 0.002, Acceptable: 0.2},
				PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.1},
				BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-4},
				Guarantee:   qos.Soft,
			},
		})
		check(err)
		rv := <-recvCh
		st := &student{
			lang: lang, host: host, send: s,
			src:   &media.CBR{Size: 320, FrameRate: chunkRate},
			sink:  media.NewSink(),
			pumpC: make(chan struct{}),
		}
		students[i] = st
		go func() { _ = media.Pump(sys, st.src, st.send, st.pumpC) }()
		go media.Drain(sys, rv, st.sink, nil)
		defer close(st.pumpC)
		descs = append(descs, hlo.StreamConfig{
			Desc: orch.VCDesc{VC: s.ID(), Source: 1, Sink: host},
			Rate: chunkRate, MaxDrop: 3,
		})
	}

	// The agent runs at the common SOURCE node (the server).
	node, err := hlo.SelectOrchestratingNode(configDescs(descs))
	check(err)
	fmt.Printf("orchestrating node: %v (the common source)\n", node)
	agent, err := hlo.New(llos[node], sys, 1, descs, hlo.Policy{Interval: 100 * time.Millisecond})
	check(err)
	check(agent.Setup())

	fmt.Println("teacher: prime + start the lesson")
	check(agent.Prime(false))
	check(agent.Start())
	time.Sleep(time.Second)
	report(students)

	fmt.Println("teacher: pause (atomic Orch.Stop)")
	check(agent.Stop())
	time.Sleep(300 * time.Millisecond)
	paused := make([]int, len(students))
	for i, st := range students {
		paused[i] = st.sink.Received()
	}
	time.Sleep(300 * time.Millisecond)
	frozen := true
	for i, st := range students {
		if st.sink.Received() > paused[i]+1 {
			frozen = false
		}
	}
	fmt.Printf("   all students frozen: %v\n", frozen)

	fmt.Println("teacher: seek to chunk 500 and resume (flush-prime + start)")
	for _, st := range students {
		st.src.Seek(500)
	}
	check(agent.Prime(true)) // flush stale audio from the buffers
	check(agent.Start())
	time.Sleep(time.Second)
	report(students)
	for _, st := range students {
		// After the seek every student should be hearing chunk >= 500.
		if st.sink.LastSeq() < 500 {
			fmt.Printf("   WARNING %s heard stale chunk %d\n", st.lang, st.sink.LastSeq())
		}
	}
	fmt.Println("teacher: end of lesson")
	agent.Release()

	// The lesson point must match across students.
	max, min := students[0].sink.LastSeq(), students[0].sink.LastSeq()
	for _, st := range students[1:] {
		if v := st.sink.LastSeq(); v > max {
			max = v
		} else if v < min {
			min = v
		}
	}
	fmt.Printf("lesson-position spread across students: %d chunks (%.0fms)\n",
		max-min, float64(max-min)/chunkRate*1000)
}

// student couples one language track with its workstation endpoints.
type student struct {
	lang  string
	host  core.HostID
	send  *transport.SendVC
	src   *media.CBR
	sink  *media.Sink
	pumpC chan struct{}
}

func report(students []*student) {
	for _, st := range students {
		fmt.Printf("   %-8s @%v: %4d chunks delivered, at chunk %d\n",
			st.lang, st.host, st.sink.Received(), st.sink.LastSeq())
	}
}

func configDescs(cfgs []hlo.StreamConfig) []orch.VCDesc {
	out := make([]orch.VCDesc, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Desc
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
