// Captions: the §3.6 scenario of associating captions from a text file
// with an on-going video play-out, using event-driven synchronisation
// (§6.3.4). The video stream's source marks the OSDU where each scene
// begins by setting its OPDU event field; the orchestration service
// matches the registered pattern at the sink LLO and raises
// Orch.Event.indication at the agent, which displays the caption for that
// scene — without the application having to examine every frame.
//
//	go run ./examples/captions
package main

import (
	"fmt"
	"log"
	"time"

	"cmtos/internal/clock"
	"cmtos/internal/core"
	"cmtos/internal/media"
	"cmtos/internal/netem"
	"cmtos/internal/orch"
	"cmtos/internal/orch/hlo"
	"cmtos/internal/qos"
	"cmtos/internal/resv"
	"cmtos/internal/transport"
)

// sceneMark is the application-defined event value flagging a scene change.
const sceneMark core.EventPattern = 0x5CE7E

var captions = []string{
	"[scene 1] EXT. LANCASTER UNIVERSITY - DAY",
	"[scene 2] INT. COMPUTING DEPARTMENT - MNI LAB",
	"[scene 3] CLOSE-UP: A TRANSPUTER CLUSTER",
	"[scene 4] THE ORCHESTRATOR AWAKENS",
}

func main() {
	sys := clock.System{}
	nw := netem.New(sys)
	check(nw.AddHost(1, nil)) // video server
	check(nw.AddHost(2, nil)) // viewer workstation
	check(nw.AddLink(1, 2, netem.LinkConfig{Bandwidth: 6e6, Delay: 2 * time.Millisecond}))
	check(nw.Start())
	defer nw.Close()
	rm := resv.New(nw)

	eSrv, err := transport.NewEntity(1, sys, nw, rm, transport.Config{RingSlots: 8})
	check(err)
	eView, err := transport.NewEntity(2, sys, nw, rm, transport.Config{RingSlots: 8})
	check(err)
	defer eSrv.Close()
	defer eView.Close()
	lSrv, lView := orch.New(eSrv), orch.New(eView)
	defer lSrv.Close()
	defer lView.Close()

	// Connect a 25fps video stream.
	recvCh := make(chan *transport.RecvVC, 1)
	check(eView.Attach(20, transport.UserCallbacks{
		OnRecvReady: func(rv *transport.RecvVC) { recvCh <- rv },
	}))
	send, err := eSrv.Connect(transport.ConnectRequest{
		SrcTSAP: 10, Dest: core.Addr{Host: 2, TSAP: 20},
		Class: qos.ClassDetectIndicate,
		Spec: qos.Spec{
			Throughput:  qos.Tolerance{Preferred: 30, Acceptable: 10},
			MaxOSDUSize: 2048,
			Delay:       qos.CeilTolerance{Preferred: 0.005, Acceptable: 0.3},
			Jitter:      qos.CeilTolerance{Preferred: 0.002, Acceptable: 0.2},
			PER:         qos.CeilTolerance{Preferred: 0, Acceptable: 0.1},
			BER:         qos.CeilTolerance{Preferred: 0, Acceptable: 1e-4},
			Guarantee:   qos.Soft,
		},
	})
	check(err)
	rv := <-recvCh

	// The film: 100 frames at 25fps, a scene change every 25 frames.
	film := &media.CBR{
		Size: 1200, FrameRate: 25, Count: 100,
		EventAt: map[uint32]core.EventPattern{
			0: sceneMark, 25: sceneMark, 50: sceneMark, 75: sceneMark,
		},
	}

	// The viewer orchestrates the single stream (the agent lives at the
	// sink) purely to use the event machinery.
	agent, err := hlo.New(lView, sys, 1, []hlo.StreamConfig{
		{Desc: orch.VCDesc{VC: send.ID(), Source: 1, Sink: 2}, Rate: 25},
	}, hlo.Policy{Interval: 100 * time.Millisecond})
	check(err)
	check(agent.Setup())

	scene := 0
	events := make(chan orch.EventIndication, 8)
	agent.SetEventHandler(func(e orch.EventIndication) { events <- e })
	check(agent.RegisterEvent(send.ID(), sceneMark))

	sink := media.NewSink()
	go media.Drain(sys, rv, sink, nil)
	go func() { _ = media.Pump(sys, film, send, nil) }()
	check(agent.Start())

	fmt.Println("playing 100 frames at 25fps; captions raised by Orch.Event:")
	deadline := time.After(8 * time.Second)
	for scene < len(captions) {
		select {
		case ev := <-events:
			fmt.Printf("   frame %3d: %s\n", ev.OSDU, captions[scene])
			scene++
		case <-deadline:
			log.Fatalf("only %d of %d scene events arrived", scene, len(captions))
		}
	}
	// Let the tail play out.
	for sink.Received() < 100 {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("film complete: %d frames delivered, %d captions shown\n",
		sink.Received(), scene)
	agent.Release()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
