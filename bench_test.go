// Package cmtos's root benchmark harness regenerates every table and
// figure of the paper's design (see DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for recorded results):
//
//	T1  BenchmarkTable1Connect          — establishment latency, local & remote (Fig. 3)
//	T2  BenchmarkTable2QoSIndication    — soft-guarantee violation detection (Table 2)
//	T3  BenchmarkTable3Renegotiate      — dynamic QoS re-negotiation (Table 3)
//	T4  BenchmarkTable4OrchSession      — Orch.request session establishment (Table 4)
//	T5  BenchmarkTable5GroupControl     — primed vs unprimed start skew (Table 5, Fig. 7)
//	T6  BenchmarkTable6Regulate         — target tracking in the Fig. 6 loop (Table 6)
//	A1  BenchmarkAblationRateVsWindow   — rate-based vs window-based flow control (§7)
//	A2  BenchmarkAblationMuxVsSeparate  — multiplexed VC vs separate orchestrated VCs (§3.6)
//	A3  BenchmarkAblationSharedBufVsCopy — §3.7 shared ring vs copy-based interface
//	A4  BenchmarkDriftBounded           — long-run drift with/without orchestration (§3.6)
//
// These are scenario benchmarks: each iteration runs a full emulated
// deployment, and the interesting output is the custom metrics
// (b.ReportMetric), not ns/op.
package cmtos_test

import (
	"testing"
	"time"

	"cmtos/internal/lab"
)

func BenchmarkTable1Connect(b *testing.B) {
	var localSum, remoteSum time.Duration
	for i := 0; i < b.N; i++ {
		res, err := lab.ConnectOnce(i)
		if err != nil {
			b.Fatal(err)
		}
		localSum += res.Local
		remoteSum += res.Remote
	}
	b.ReportMetric(float64(localSum.Microseconds())/float64(b.N), "local-connect-µs")
	b.ReportMetric(float64(remoteSum.Microseconds())/float64(b.N), "remote-connect-µs")
}

func BenchmarkTable2QoSIndication(b *testing.B) {
	var latSum time.Duration
	var perSum float64
	for i := 0; i < b.N; i++ {
		res, err := lab.QoSIndicationOnce()
		if err != nil {
			b.Fatal(err)
		}
		latSum += res.DetectLatency
		perSum += res.ReportedPER
	}
	b.ReportMetric(float64(latSum.Milliseconds())/float64(b.N), "detect-ms")
	b.ReportMetric(perSum/float64(b.N), "reported-PER")
}

func BenchmarkTable3Renegotiate(b *testing.B) {
	var latSum time.Duration
	intact := 0
	for i := 0; i < b.N; i++ {
		res, err := lab.RenegotiateOnce()
		if err != nil {
			b.Fatal(err)
		}
		latSum += res.UpgradeLatency
		if res.RejectedIntact {
			intact++
		}
	}
	b.ReportMetric(float64(latSum.Microseconds())/float64(b.N), "renegotiate-µs")
	b.ReportMetric(float64(intact)/float64(b.N), "rejected-vc-intact")
}

func BenchmarkTable4OrchSession(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName("vcs", n), func(b *testing.B) {
			var sum time.Duration
			for i := 0; i < b.N; i++ {
				lat, err := lab.OrchSessionOnce(n)
				if err != nil {
					b.Fatal(err)
				}
				sum += lat
			}
			b.ReportMetric(float64(sum.Microseconds())/float64(b.N), "orch-setup-µs")
		})
	}
}

func BenchmarkTable5GroupControl(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(benchName("streams", n), func(b *testing.B) {
			var primed, unprimed, prime time.Duration
			for i := 0; i < b.N; i++ {
				res, err := lab.StartSkewOnce(n)
				if err != nil {
					b.Fatal(err)
				}
				primed += res.PrimedSkew
				unprimed += res.UnprimedSkew
				prime += res.PrimeLatency
			}
			b.ReportMetric(float64(primed.Milliseconds())/float64(b.N), "primed-start-skew-ms")
			b.ReportMetric(float64(unprimed.Milliseconds())/float64(b.N), "unprimed-start-skew-ms")
			b.ReportMetric(float64(prime.Milliseconds())/float64(b.N), "prime-latency-ms")
		})
	}
}

func BenchmarkTable6Regulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lab.RegulateOnce(15, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanAbsLag, "mean-abs-lag-OSDUs")
		b.ReportMetric(float64(res.MaxAbsLag), "max-abs-lag-OSDUs")
		b.ReportMetric(float64(res.Intervals), "indications")
	}
}

func BenchmarkAblationRateVsWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lab.RateVsWindowOnce(300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RateJitter.Microseconds()), "rate-jitter-µs")
		b.ReportMetric(float64(res.WindowJitter.Microseconds()), "window-jitter-µs")
		b.ReportMetric(res.RatePaceErr, "rate-pace-error")
		b.ReportMetric(res.WindowPaceErr, "window-pace-error")
		b.ReportMetric(float64(res.RateEarly), "rate-early-frames")
		b.ReportMetric(float64(res.WindowEarly), "window-early-frames")
	}
}

func BenchmarkAblationMuxVsSeparate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lab.MuxVsSeparateOnce(200)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MuxAudioJitter.Microseconds()), "mux-audio-jitter-µs")
		b.ReportMetric(float64(res.SeparateAudioJitter.Microseconds()), "separate-audio-jitter-µs")
		b.ReportMetric(res.MuxBandwidth/1000, "mux-reserved-KBps")
		b.ReportMetric(res.SeparateBandwidth/1000, "separate-reserved-KBps")
	}
}

func BenchmarkAblationSharedBufVsCopy(b *testing.B) {
	for _, size := range []int{256, 4096, 65536} {
		b.Run(benchName("osdu", size), func(b *testing.B) {
			var shared, copied float64
			for i := 0; i < b.N; i++ {
				res := lab.SharedBufVsCopyOnce(10000, size)
				shared += res.SharedNsPerOSDU
				copied += res.CopyNsPerOSDU
			}
			b.ReportMetric(shared/float64(b.N), "shared-ns/OSDU")
			b.ReportMetric(copied/float64(b.N), "copy-ns/OSDU")
		})
	}
}

func BenchmarkDriftBounded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lab.DriftOnce(3*time.Second, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.UnregulatedSkew.Milliseconds()), "unregulated-skew-ms")
		b.ReportMetric(float64(res.RegulatedSkew.Milliseconds()), "regulated-skew-ms")
	}
}

// BenchmarkFig6FeedbackLoop isolates one regulate request→indication
// cycle of the Fig. 6 interaction.
func BenchmarkFig6FeedbackLoop(b *testing.B) {
	res, err := lab.RegulateOnce(b.N, 50*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if res.Intervals > 0 {
		b.ReportMetric(float64(res.LoopDuration.Milliseconds())/float64(res.Intervals), "ms/interval")
		b.ReportMetric(float64(res.ReportLoss)/float64(res.Intervals), "partial-report-rate")
	}
}

// BenchmarkFig7Prime measures the Orch.Prime round trip (buffers filled
// at every sink before the confirm, Fig. 7).
func BenchmarkFig7Prime(b *testing.B) {
	var sum time.Duration
	for i := 0; i < b.N; i++ {
		res, err := lab.StartSkewOnce(2)
		if err != nil {
			b.Fatal(err)
		}
		sum += res.PrimeLatency
	}
	b.ReportMetric(float64(sum.Milliseconds())/float64(b.N), "prime-ms")
}

func benchName(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
